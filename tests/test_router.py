"""Tests for the front-door router (`repro.router`).

The acceptance bar from the issue: protocol pass-through parity for
all five ops (an unmodified ``ServerClient`` against the router),
affinity stability under replica-set changes, failover on a
SIGKILLed replica with bit-identical answers via retry on a
survivor, and rolling drain/restart with zero lost requests.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core import PhastEngine
from repro.graph import save_graph, save_hierarchy
from repro.router import (
    HashRing,
    PhastRouter,
    Replica,
    ReplicaManager,
    RouterConfig,
    route_in_thread,
)
from repro.server import (
    PhastService,
    ServerClient,
    ServerConfig,
    ServerError,
    serve_in_thread,
)


# ---------------------------------------------------------------------------
# Consistent-hash ring


def test_ring_is_deterministic_and_roughly_balanced():
    ring = HashRing(vnodes=64)
    for name in ("a", "b", "c"):
        ring.add(name)
    keys = [f"src:{i}" for i in range(3000)]
    homes = [ring.primary(k) for k in keys]
    assert homes == [ring.primary(k) for k in keys]  # stable
    counts = {name: homes.count(name) for name in ("a", "b", "c")}
    assert all(count > 500 for count in counts.values()), counts


def test_ring_removal_moves_only_the_lost_members_keys():
    """Affinity stability: survivors' keys don't move when one leaves."""
    ring = HashRing(vnodes=64)
    for name in ("a", "b", "c"):
        ring.add(name)
    keys = [f"src:{i}" for i in range(2000)]
    before = {k: ring.primary(k) for k in keys}
    ring.remove("b")
    after = {k: ring.primary(k) for k in keys}
    for k in keys:
        if before[k] != "b":
            assert after[k] == before[k], k
        else:
            assert after[k] in ("a", "c")
    # ...and adding it back restores the original assignment exactly.
    ring.add("b")
    assert {k: ring.primary(k) for k in keys} == before


def test_ring_preference_lists_every_member_once():
    ring = HashRing(vnodes=8)
    for name in ("a", "b", "c", "d"):
        ring.add(name)
    pref = ring.preference("some-key")
    assert sorted(pref) == ["a", "b", "c", "d"]
    assert ring.preference("some-key", limit=2) == pref[:2]
    ring.remove("a")
    ring.remove("b")
    ring.remove("c")
    ring.remove("d")
    assert ring.preference("some-key") == []
    assert ring.primary("some-key") is None


# ---------------------------------------------------------------------------
# Replica state machine (no I/O)


def test_replica_failure_escalation_and_recovery():
    transitions = []
    rep = Replica("r", "127.0.0.1", 1, down_after=3, warmup_s=0.0,
                  on_transition=lambda n, a, b: transitions.append((a, b)))
    assert rep.state == "unknown" and not rep.routable
    rep.apply_probe({"ready": True, "pid": 10, "uptime_seconds": 1.0})
    assert rep.state == "active"
    rep.record_failure()
    assert rep.state == "suspect" and rep.routable
    rep.record_failure()
    rep.record_failure()
    assert rep.state == "down" and not rep.routable
    # Recovery re-enters through warming (instant here: warmup_s=0).
    rep.apply_probe({"ready": True, "pid": 10, "uptime_seconds": 2.0})
    assert rep.state == "warming"
    assert rep.warm_fraction() == 1.0
    assert rep.state == "active"
    assert ("suspect", "down") in transitions
    assert ("down", "warming") in transitions


def test_replica_detects_restart_via_uptime_and_pid():
    rep = Replica("r", "127.0.0.1", 1, warmup_s=0.0)
    rep.apply_probe({"ready": True, "pid": 10, "uptime_seconds": 50.0})
    assert rep.state == "active" and rep.generation == 0
    # Uptime moving backwards = the process is new.
    rep.apply_probe({"ready": True, "pid": 10, "uptime_seconds": 0.5})
    assert rep.generation == 1
    assert rep.state == "warming"
    rep.warm_fraction()
    assert rep.state == "active"
    # A new pid is a restart even if uptime looks plausible.
    rep.apply_probe({"ready": True, "pid": 11, "uptime_seconds": 60.0})
    assert rep.generation == 2


def test_replica_warm_ramp_thins_traffic():
    rep = Replica("r", "127.0.0.1", 1, down_after=1, warmup_s=30.0)
    rep.apply_probe({"ready": True})
    rep.record_failure()
    assert rep.state == "down"
    rep.apply_probe({"ready": True})
    assert rep.state == "warming"
    admitted = sum(rep.admit_warm() for _ in range(100))
    # Early in a 30 s ramp the replica gets well under half its share
    # (the floor is 10%), but never zero — cold caches need traffic.
    assert 5 <= admitted <= 50, admitted


def test_replica_draining_ignores_probes_until_readmitted():
    rep = Replica("r", "127.0.0.1", 1, warmup_s=0.0)
    rep.apply_probe({"ready": True})
    rep.hold_out()
    assert rep.state == "draining" and not rep.routable
    rep.apply_probe({"ready": True})     # probes must not re-admit
    assert rep.state == "draining"
    rep.record_failure()                 # nor do failures demote
    assert rep.state == "draining"
    rep.readmit()
    assert rep.state == "warming"
    rep.warm_fraction()
    assert rep.state == "active"


# ---------------------------------------------------------------------------
# Router over in-thread replicas (wire-level, fast)


@pytest.fixture(scope="module")
def reference(road, road_ch):
    engine = PhastEngine(road_ch)
    return np.stack([engine.tree(s).dist for s in range(road.n)])


def _make_service(road, road_ch):
    return PhastService(
        road_ch, graph=road,
        config=ServerConfig(batch_max=4, max_wait_ms=1.0, max_pending=64),
    )


@pytest.fixture(scope="module")
def routed(road, road_ch):
    """Two in-thread replicas behind one router."""
    handles = [serve_in_thread(_make_service(road, road_ch))
               for _ in range(2)]
    router = PhastRouter(RouterConfig(probe_interval_ms=100.0,
                                      warmup_ms=200.0))
    for handle in handles:
        router.add_replica(handle.host, handle.port)
    with route_in_thread(router) as rh:
        yield rh, handles, router
    for handle in handles:
        handle.stop()


@pytest.fixture()
def rclient(routed):
    rh, _, _ = routed
    with ServerClient(rh.host, rh.port) as c:
        yield c


def test_all_five_ops_pass_through_bit_identical(rclient, reference, road):
    """An unmodified ServerClient sees exactly the single-server answers."""
    q = rclient.query(0, road.n - 1)
    assert q["distance"] == int(reference[0][road.n - 1])
    assert np.array_equal(rclient.tree(5), reference[5])
    targets = [1, 9, 17, 40]
    assert np.array_equal(rclient.one_to_many(3, targets),
                          reference[3][targets])
    budget = 5000
    assert np.array_equal(rclient.isochrone(2, budget),
                          np.flatnonzero(reference[2] <= budget))
    S, T = [0, 5, 11], [2, 3, 13, 19]
    assert np.array_equal(rclient.matrix(S, T),
                          reference[np.ix_(S, T)])


def test_admin_ops_answered_at_the_router(rclient):
    assert rclient.ping() is True
    info = rclient.info()
    assert info["router"]["replicas"] == 2
    assert info["n"] > 0  # proxied from a live replica
    health = rclient.health()
    assert health["router"] is True
    assert health["ready"] is True
    assert health["status"] == "ok"
    assert len(health["replicas"]) == 2
    for snap in health["replicas"].values():
        assert snap["state"] == "active"
        assert snap["uptime_seconds"] is not None  # probed generation signal
    metrics = rclient.metrics()
    assert metrics["router"] is True
    assert "affinity" in metrics and "replica_rps" in metrics


def test_affinity_keeps_a_hot_source_on_one_replica(rclient):
    before = rclient.metrics()["forwarded"]
    for _ in range(12):
        rclient.tree(7)
    after = rclient.metrics()["forwarded"]
    gained = {name: after.get(name, 0) - before.get(name, 0)
              for name in after}
    assert sorted(gained.values(), reverse=True)[0] >= 12
    affinity = rclient.metrics()["affinity"]
    assert affinity["hit_rate"] == 1.0
    assert affinity["spills"] == 0


def test_matrix_affinity_keeps_a_target_set_on_one_replica(routed, rclient):
    """Repeat target sets hit one replica's warm SelectionCache."""
    _, handles, _ = routed
    T = [2, 3, 13, 19, 23]
    for i in range(6):
        rclient.matrix([i, i + 7], T)
    hits = []
    for handle in handles:
        with ServerClient(handle.host, handle.port) as direct:
            snap = direct.metrics()["selection_cache"]
            hits.append((snap["hits"], snap["misses"]))
    # All six requests landed on the same replica: one cold miss,
    # five warm hits there, nothing on the other.
    total_hits = sum(h for h, _ in hits)
    assert total_hits >= 5, hits


def test_error_passthrough_and_router_rejections(rclient, road):
    with pytest.raises(ServerError) as err:
        rclient.tree(road.n + 5)  # replica-side 400
    assert err.value.code == 400
    with pytest.raises(ServerError) as err:
        rclient.call("bogus-op")  # router-side 400
    assert err.value.code == 400
    with pytest.raises(ServerError) as err:
        rclient.query(0, 1, timeout_ms=1e-6)  # replica-side 504
    assert err.value.code == 504


def test_holding_out_every_replica_returns_503(routed):
    rh, _, router = routed
    names = list(router.replicas)
    for name in names:
        rh.hold_out(name)
    try:
        with ServerClient(rh.host, rh.port) as c:
            health = c.health()
            assert health["ready"] is False
            assert health["status"] == "down"
            with pytest.raises(ServerError) as err:
                c.tree(0)
            assert err.value.code == 503
    finally:
        for name in names:
            rh.readmit(name)
    with ServerClient(rh.host, rh.port) as c:
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if c.health()["ready"]:
                break
            time.sleep(0.05)
        assert c.health()["ready"] is True
        assert np.asarray(c.tree(0)).size > 0


def test_failover_when_a_thread_replica_drains_away(road, road_ch, reference):
    """Losing one of two replicas is invisible to the client."""
    handles = [serve_in_thread(_make_service(road, road_ch))
               for _ in range(2)]
    router = PhastRouter(RouterConfig(probe_interval_ms=50.0,
                                      warmup_ms=100.0, down_after=2))
    for handle in handles:
        router.add_replica(handle.host, handle.port)
    with route_in_thread(router) as rh:
        with ServerClient(rh.host, rh.port) as c:
            for s in (0, 9, 33):
                assert np.array_equal(c.tree(s), reference[s])
            handles[0].stop()  # drains: 503s, then a closed socket
            for i in range(30):
                s = i % road.n
                assert np.array_equal(c.tree(s), reference[s])
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                health = c.health()
                if health["status"] == "degraded":
                    break
                time.sleep(0.05)
            assert health["status"] == "degraded"
            assert health["ready"] is True
            states = [r["state"] for r in health["replicas"].values()]
            assert "down" in states and "active" in states
            assert c.metrics()["affinity"]["failovers"] >= 1
    handles[1].stop()


# ---------------------------------------------------------------------------
# Router over spawned `repro serve` subprocess replicas


@pytest.fixture(scope="module")
def artifacts(small_road, small_road_ch, tmp_path_factory):
    root = tmp_path_factory.mktemp("router-artifacts")
    graph_path = root / "g.npz"
    ch_path = root / "g.ch.npz"
    save_graph(small_road, graph_path)
    save_hierarchy(small_road_ch, ch_path)
    return str(graph_path), str(ch_path)


@pytest.fixture(scope="module")
def small_reference(small_road, small_road_ch):
    engine = PhastEngine(small_road_ch)
    return np.stack([engine.tree(s).dist for s in range(small_road.n)])


def test_sigkilled_replica_fails_over_bit_identical(
        artifacts, small_road, small_reference):
    """The kill-one-of-two acceptance run, at test scale: every answer
    during and after the SIGKILL must be bit-identical to serial PHAST,
    and the victim must rejoin through a generation bump + warm ramp."""
    graph_path, ch_path = artifacts
    manager = ReplicaManager()
    router = PhastRouter(RouterConfig(probe_interval_ms=50.0,
                                      warmup_ms=200.0, down_after=2))
    try:
        victim = manager.spawn(graph_path, ch_path)
        survivor = manager.spawn(graph_path, ch_path)
        for managed in manager.replicas.values():
            router.add_replica(managed.host, managed.port)
        with route_in_thread(router) as rh:
            with ServerClient(rh.host, rh.port) as c:
                for s in (0, 9, 33):
                    assert np.array_equal(c.tree(s), small_reference[s])

                os.kill(manager.replicas[victim].proc.pid, signal.SIGKILL)
                for i in range(40):
                    s = i % small_road.n
                    assert np.array_equal(c.tree(s), small_reference[s])
                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    health = c.health()
                    if health["replicas"][victim]["state"] == "down":
                        break
                    time.sleep(0.05)
                assert health["replicas"][victim]["state"] == "down"
                assert health["replicas"][survivor]["state"] == "active"
                assert health["ready"] is True

                # Restart the victim; the probe must see the new pid
                # (generation bump) and walk it back in via warming.
                manager.stop(victim)  # reap the corpse
                manager.restart(victim)
                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    snap = c.health()["replicas"][victim]
                    if snap["state"] == "active":
                        break
                    time.sleep(0.05)
                assert snap["state"] == "active", snap
                assert snap["generation"] >= 1
                for s in (1, 8, 20):
                    assert np.array_equal(c.tree(s), small_reference[s])
                counts = c.metrics()["transitions"]["counts"]
                assert counts.get("down->warming", 0) >= 1
                assert counts.get("warming->active", 0) >= 1
    finally:
        manager.stop_all()


def test_rolling_restart_loses_zero_requests(
        artifacts, small_road, small_reference):
    """The zero-downtime-deploy acceptance run: continuous load through
    a full rolling drain/restart of both replicas, zero failures."""
    graph_path, ch_path = artifacts
    manager = ReplicaManager()
    router = PhastRouter(RouterConfig(probe_interval_ms=50.0,
                                      warmup_ms=200.0))
    try:
        for _ in range(2):
            manager.spawn(graph_path, ch_path)
        for managed in manager.replicas.values():
            router.add_replica(managed.host, managed.port)
        with route_in_thread(router) as rh:
            stop = threading.Event()
            failures: list[str] = []
            served = [0]

            def load() -> None:
                with ServerClient(rh.host, rh.port) as c:
                    i = 0
                    while not stop.is_set():
                        s = i % small_road.n
                        i += 1
                        try:
                            if np.array_equal(c.tree(s),
                                              small_reference[s]):
                                served[0] += 1
                            else:
                                failures.append(f"wrong answer for {s}")
                        except Exception as exc:
                            failures.append(repr(exc))

            loader = threading.Thread(target=load)
            loader.start()
            try:
                restarted = manager.rolling_restart(rh)
            finally:
                stop.set()
                loader.join()
            assert len(restarted) == 2
            assert failures == [], failures[:5]
            assert served[0] > 0
            counts = router.metrics.snapshot()["transitions"]["counts"]
            assert counts.get("active->draining", 0) >= 2
            assert counts.get("draining->warming", 0) >= 2
    finally:
        manager.stop_all()


def test_manager_rejects_process_control_of_adopted_replicas():
    manager = ReplicaManager()
    name = manager.adopt("127.0.0.1", 7171)
    assert name == "127.0.0.1:7171"
    with pytest.raises(ValueError):
        manager.stop(name)
    with pytest.raises(ValueError):
        manager.restart(name)
    manager.stop_all()  # adopted replicas are never signalled
