"""Tests for bucket-based many-to-many distances."""

import numpy as np
import pytest

from repro.core import RPhastEngine, many_to_many_buckets
from repro.graph import INF
from repro.sssp import dijkstra


def test_matrix_matches_dijkstra(road, road_ch, rng):
    S = rng.integers(0, road.n, 5)
    T = rng.integers(0, road.n, 8)
    M = many_to_many_buckets(road_ch, S, T)
    for i, s in enumerate(S):
        ref = dijkstra(road, int(s), with_parents=False).dist
        assert np.array_equal(M[i], ref[T])


def test_matches_rphast(road_ch, rng):
    S = rng.integers(0, road_ch.n, 4)
    T = rng.integers(0, road_ch.n, 6)
    buckets = many_to_many_buckets(road_ch, S, T)
    engine = RPhastEngine(road_ch, T)
    rphast = engine.many_to_many(S)
    col = np.searchsorted(engine.targets, T)
    assert np.array_equal(buckets, rphast[:, col])


def test_duplicates_and_diagonal(road_ch):
    M = many_to_many_buckets(road_ch, [7, 7], [7, 9, 9])
    assert M[0, 0] == 0 and M[1, 0] == 0
    assert M[0, 1] == M[0, 2]
    assert np.array_equal(M[0], M[1])


def test_empty_sets(road_ch):
    assert many_to_many_buckets(road_ch, [], [1]).shape == (0, 1)
    assert many_to_many_buckets(road_ch, [1], []).shape == (1, 0)


def test_out_of_range(road_ch):
    with pytest.raises(ValueError):
        many_to_many_buckets(road_ch, [road_ch.n], [0])
    with pytest.raises(ValueError):
        many_to_many_buckets(road_ch, [0], [-1])


def test_unreachable_is_inf():
    from repro.ch import contract_graph
    from repro.graph import StaticGraph

    g = StaticGraph(4, [0, 1, 2, 3], [1, 0, 3, 2], [1, 1, 1, 1])
    ch = contract_graph(g)
    M = many_to_many_buckets(ch, [0], [1, 2])
    assert M[0, 0] == 1
    assert M[0, 1] == INF
