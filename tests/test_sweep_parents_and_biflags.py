"""Tests for in-sweep parents and bidirectional arc flags."""

import numpy as np
import pytest

from repro.apps import (
    arcflags_query,
    arcflags_query_bidirectional,
    compute_bidirectional_arc_flags,
    partition_graph,
)
from repro.core import PhastEngine
from repro.graph import INF
from repro.sssp import dijkstra


# -- in-sweep parents (Section VII-A) --------------------------------------


def test_sweep_parents_distances_exact(road, road_ch, road_engine, rng):
    for s in rng.integers(0, road.n, 5):
        s = int(s)
        tree = road_engine.tree_with_sweep_parents(s)
        ref = dijkstra(road, s, with_parents=False).dist
        assert np.array_equal(tree.dist, ref)


def test_sweep_parents_form_valid_gplus_tree(road, road_ch, road_engine):
    s = 13
    tree = road_engine.tree_with_sweep_parents(s)
    for v in range(road.n):
        if v == s or tree.dist[v] >= INF:
            continue
        u, hops = v, 0
        seen = set()
        while u != s:
            assert u not in seen
            seen.add(u)
            u = int(tree.parent[u])
            assert u >= 0
            hops += 1
        # Labels never increase walking toward the root.
        assert tree.dist[int(tree.parent[v])] <= tree.dist[v]


def test_sweep_parents_requires_reorder(road_ch):
    engine = PhastEngine(road_ch, reorder=False)
    with pytest.raises(ValueError):
        engine.tree_with_sweep_parents(0)


def test_sweep_parents_source_is_root(road_engine):
    tree = road_engine.tree_with_sweep_parents(7)
    assert tree.parent[7] == -1


def test_sweep_parents_repeated_queries(road, road_engine, rng):
    """No stale state across back-to-back parent queries."""
    for s in rng.integers(0, road.n, 4):
        s = int(s)
        tree = road_engine.tree_with_sweep_parents(s)
        assert tree.dist[s] == 0
        assert tree.parent[s] == -1


def test_sweep_parents_on_disconnected():
    from repro.ch import contract_graph
    from repro.graph import StaticGraph

    g = StaticGraph(4, [0, 1], [1, 0], [3, 3])
    engine = PhastEngine(contract_graph(g))
    tree = engine.tree_with_sweep_parents(0)
    assert tree.dist[1] == 3
    assert tree.parent[1] == 0
    assert tree.parent[2] == -1 and tree.dist[2] >= INF


# -- bidirectional arc flags -------------------------------------------------


@pytest.fixture(scope="module")
def biflags(small_road):
    part = partition_graph(small_road, 4)
    return compute_bidirectional_arc_flags(small_road, part, method="dijkstra")


def test_bidirectional_queries_exact(small_road, biflags, rng):
    for _ in range(30):
        s, t = (int(x) for x in rng.integers(0, small_road.n, 2))
        ref = dijkstra(small_road, s, with_parents=False).dist[t]
        got, _ = arcflags_query_bidirectional(biflags, s, t)
        assert got == ref, (s, t)


def test_bidirectional_same_vertex(small_road, biflags):
    got, _ = arcflags_query_bidirectional(biflags, 5, 5)
    assert got == 0


def test_bidirectional_scans_fewer(small_road, biflags, rng):
    bi = uni = 0
    for _ in range(20):
        s, t = (int(x) for x in rng.integers(0, small_road.n, 2))
        bi += arcflags_query_bidirectional(biflags, s, t)[1]
        uni += arcflags_query(biflags.forward, s, t)[1]
    assert bi < uni


def test_bidirectional_methods_agree(small_road, biflags):
    ph = compute_bidirectional_arc_flags(
        small_road, biflags.partition, method="phast"
    )
    assert np.array_equal(ph.forward.flags, biflags.forward.flags)
    assert np.array_equal(ph.backward.flags, biflags.backward.flags)


def test_bidirectional_unreachable():
    from repro.graph import StaticGraph

    g = StaticGraph(4, [0, 1, 2, 3], [1, 0, 3, 2], [1, 1, 1, 1])
    part = partition_graph(g, 2)
    baf = compute_bidirectional_arc_flags(g, part, method="dijkstra")
    got, _ = arcflags_query_bidirectional(baf, 0, 2)
    assert got == INF
