"""Section II-B — CH point-to-point queries and preprocessing.

Paper: random s–t queries settle < 400 vertices (of 18M) and run in a
fraction of a millisecond; the loose-stopping forward-only search
settles ~500; preprocessing takes ~5 minutes on 4 cores and adds fewer
shortcuts than original arcs.
"""

from __future__ import annotations

import numpy as np

from common import fmt, load_instance, print_table, random_sources, time_ms
from repro.ch import ch_query, upward_search
from repro.sssp import dijkstra


def run(quiet: bool = False):
    inst = load_instance()
    g, ch = inst.graph, inst.ch
    pairs = list(zip(random_sources(g.n, 50, 1), random_sources(g.n, 50, 2)))

    settled = [
        ch_query(ch, s, t).settled_forward + ch_query(ch, s, t).settled_backward
        for s, t in pairs[:25]
    ]
    stalled = [
        (lambda q: q.settled_forward + q.settled_backward)(
            ch_query(ch, s, t, stall=True)
        )
        for s, t in pairs[:25]
    ]
    upward_sizes = [upward_search(ch, s).size for s, _ in pairs[:25]]
    t_query = time_ms(lambda: [ch_query(ch, s, t) for s, t in pairs[:10]], 3) / 10
    t_dij = time_ms(
        lambda: dijkstra(g, pairs[0][0], target=pairs[0][1]), 3
    )

    rows = [
        ["avg settled (bidirectional)", fmt(np.mean(settled), 1), "< 400 of 18M"],
        ["avg settled, stall-on-demand", fmt(np.mean(stalled), 1), "(CH paper opt.)"],
        ["avg upward search space", fmt(np.mean(upward_sizes), 1), "~500"],
        ["CH query ms", fmt(t_query, 3), "fraction of a ms"],
        ["p2p Dijkstra ms", fmt(t_dij, 2), "-"],
        ["shortcuts / original arcs", fmt(ch.num_shortcuts / g.m, 2), "< 1"],
        ["CH preprocessing s", fmt(inst.build_seconds, 1), "~300 (4 cores, 18M)"],
    ]
    if not quiet:
        print_table(f"CH queries (n={g.n})", ["quantity", "measured", "paper"], rows)
    return rows


# -- pytest shape checks -----------------------------------------------------


def test_search_space_tiny_fraction(europe):
    sizes = [
        upward_search(europe.ch, s).size
        for s in random_sources(europe.graph.n, 20, 3)
    ]
    assert np.mean(sizes) < europe.graph.n * 0.05


def test_fewer_shortcuts_than_arcs(europe):
    assert europe.ch.num_shortcuts < europe.graph.m


def test_query_faster_than_p2p_dijkstra(europe):
    s, t = 0, europe.graph.n - 1
    t_ch = time_ms(lambda: ch_query(europe.ch, s, t), 5)
    t_dij = time_ms(lambda: dijkstra(europe.graph, s, target=t), 3)
    assert t_ch < t_dij


def test_bench_ch_query(benchmark, europe):
    benchmark(lambda: ch_query(europe.ch, 0, europe.graph.n - 1))


def test_bench_upward_search(benchmark, europe):
    benchmark(lambda: upward_search(europe.ch, 0))


if __name__ == "__main__":
    run()
