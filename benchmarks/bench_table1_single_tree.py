"""Table I — single-tree performance across algorithms and layouts.

Paper rows: Dijkstra (binary heap / Dial / smart queue), BFS, PHAST
(original ordering / reordered by level / reordered + 4 cores), columns
random / input / DFS layouts, on Europe with travel times.

The reproduction reports three views:

* measured wall-clock per tree (Python; ratios are the target — the
  paper's visible anchors are Dijkstra 2.8 s vs PHAST 172 ms vs
  BFS 2.0 s on the DFS layout, and 8.0 s Dijkstra on random);
* cache-simulated DRAM line fetches per layout, which is where the
  paper's layout effect (random ≫ input > DFS) reproduces exactly,
  since Python wall-clock cannot exhibit hardware locality;
* the cost model's paper-scale prediction for the DFS column.
"""

from __future__ import annotations

import numpy as np

from common import (
    EUROPE_COUNTS,
    EUROPE_DIJKSTRA_COUNTS,
    fmt,
    load_instance,
    print_table,
    random_sources,
    time_ms,
)
from repro.core import SweepStructure, tree_level_parallel
from repro.simulator import (
    CostModel,
    dijkstra_trace,
    machine,
    nehalem_hierarchy,
    phast_sweep_trace,
)
from repro.sssp import bfs, dijkstra

LAYOUTS = ("random", "input", "dfs")

#: Table I cells the extracted paper text preserves (ms, Europe/time).
PAPER_DFS = {
    "dijkstra_smart": 2800.0,
    "bfs": 2000.0,
    "phast_original": 1286.0,
    "phast_reordered": 172.0,
    "phast_4cores": 49.7,
}
PAPER_RANDOM = {"dijkstra_smart": 8000.0, "bfs": 6000.0}


def measure_layout(inst, sources) -> dict[str, float]:
    """Wall-clock ms per tree for every Table I row on one instance."""
    g = inst.graph
    out: dict[str, float] = {}
    s = sources[0]
    out["dijkstra_binary"] = time_ms(
        lambda: dijkstra(g, s, queue="binary", with_parents=False), 3
    )
    out["dijkstra_kheap"] = time_ms(
        lambda: dijkstra(g, s, queue="kheap", with_parents=False), 3
    )
    out["dijkstra_fibonacci"] = time_ms(
        lambda: dijkstra(g, s, queue="fibonacci", with_parents=False), 3
    )
    out["dijkstra_dial"] = time_ms(
        lambda: dijkstra(g, s, queue="dial", with_parents=False), 3
    )
    out["dijkstra_smart"] = time_ms(
        lambda: dijkstra(g, s, queue="smart", with_parents=False), 3
    )
    out["bfs"] = time_ms(lambda: bfs(g, s, with_parents=False), 5)
    eng_orig = inst.engine(reorder=False)
    eng_re = inst.engine(reorder=True)
    out["phast_original"] = time_ms(lambda: eng_orig.tree(s), 5)
    out["phast_reordered"] = time_ms(lambda: eng_re.tree(s), 5)
    out["phast_4cores"] = time_ms(
        lambda: tree_level_parallel(eng_re, s, num_threads=4), 5
    )
    return out


def cache_sim_misses(inst) -> dict[str, int]:
    """DRAM line fetches per tree for the locality-sensitive rows."""
    g = inst.graph
    scale = g.n / 18_000_000
    out: dict[str, int] = {}
    tree = dijkstra(g, 0, with_parents=False, record_order=True)
    h = nehalem_hierarchy(scale)
    h.access_array(dijkstra_trace(g, tree.extra["scan_order"]))
    out["dijkstra_smart"] = h.dram_accesses
    sw = SweepStructure(inst.ch)
    h = nehalem_hierarchy(scale)
    h.access_array(phast_sweep_trace(sw, reorder=False))
    out["phast_original"] = h.dram_accesses
    h = nehalem_hierarchy(scale)
    h.access_array(phast_sweep_trace(sw, reorder=True))
    out["phast_reordered"] = h.dram_accesses
    return out


ROWS = [
    ("Dijkstra binary heap", "dijkstra_binary"),
    ("Dijkstra 4-heap", "dijkstra_kheap"),
    ("Dijkstra Fibonacci", "dijkstra_fibonacci"),
    ("Dijkstra Dial", "dijkstra_dial"),
    ("Dijkstra smart queue", "dijkstra_smart"),
    ("BFS", "bfs"),
    ("PHAST original order", "phast_original"),
    ("PHAST reordered", "phast_reordered"),
    ("PHAST reordered 4 cores", "phast_4cores"),
]


def run(quiet: bool = False):
    instances = {lay: load_instance(layout=lay) for lay in LAYOUTS}
    sources = random_sources(instances["dfs"].graph.n, 3, seed=1)
    measured = {lay: measure_layout(instances[lay], sources) for lay in LAYOUTS}

    rows = []
    for label, key in ROWS:
        rows.append(
            [label]
            + [fmt(measured[lay][key], 2) for lay in LAYOUTS]
            + [fmt(PAPER_DFS.get(key, float("nan")), 1)]
        )
    if not quiet:
        print_table(
            f"Table I (measured ms/tree, n={instances['dfs'].graph.n})",
            ["algorithm", "random", "input", "dfs", "paper(dfs)"],
            rows,
        )

    misses = {lay: cache_sim_misses(instances[lay]) for lay in LAYOUTS}
    miss_rows = [
        [label]
        + [f"{misses[lay][key]:,}" for lay in LAYOUTS]
        for label, key in ROWS
        if key in misses["dfs"]
    ]
    if not quiet:
        print_table(
            "Table I locality view (cache-simulated DRAM line fetches/tree)",
            ["algorithm", "random", "input", "dfs"],
            miss_rows,
        )

    cm = CostModel(machine("M1-4"))
    model_rows = [
        ["Dijkstra smart queue", fmt(cm.dijkstra_single(EUROPE_DIJKSTRA_COUNTS), 0), "2800"],
        ["PHAST reordered", fmt(cm.phast_single(EUROPE_COUNTS), 0), "172"],
        [
            "PHAST reordered 4 cores",
            fmt(cm.phast_single_tree_level_parallel(EUROPE_COUNTS, 4), 1),
            "49.7",
        ],
    ]
    if not quiet:
        print_table(
            "Table I modeled at paper scale (M1-4, Europe/time, ms/tree)",
            ["algorithm", "model", "paper"],
            model_rows,
        )
    return measured, misses


# -- pytest shape checks -----------------------------------------------------


def test_phast_beats_dijkstra_measured(europe):
    s = 0
    dij = time_ms(
        lambda: dijkstra(europe.graph, s, queue="smart", with_parents=False), 3
    )
    ph = time_ms(lambda: europe.engine().tree(s), 5)
    assert ph < dij / 4  # paper: 16.4x


def test_random_layout_misses_most():
    inst_rand = load_instance(layout="random")
    inst_dfs = load_instance(layout="dfs")
    m_rand = cache_sim_misses(inst_rand)
    m_dfs = cache_sim_misses(inst_dfs)
    assert m_rand["dijkstra_smart"] > m_dfs["dijkstra_smart"]
    assert m_rand["phast_reordered"] >= m_dfs["phast_reordered"] * 0.9


def test_reordering_reduces_misses(europe):
    m = cache_sim_misses(europe)
    assert m["phast_reordered"] < m["phast_original"]


def test_bench_dijkstra_smart(benchmark, europe):
    benchmark(lambda: dijkstra(europe.graph, 0, queue="smart", with_parents=False))


def test_bench_bfs(benchmark, europe):
    benchmark(lambda: bfs(europe.graph, 0, with_parents=False))


def test_bench_phast_reordered(benchmark, europe_engine):
    benchmark(lambda: europe_engine.tree(0))


def test_bench_phast_original_order(benchmark, europe):
    engine = europe.engine(reorder=False)
    benchmark(lambda: engine.tree(0))


if __name__ == "__main__":
    run()
