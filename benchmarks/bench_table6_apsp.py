"""Table VI — Dijkstra vs PHAST vs GPHAST: time and energy, per tree
and for all-pairs shortest paths.

Paper rows (Europe, n = 18M): Dijkstra and PHAST on M1-4 / M2-6 /
M4-12, GPHAST on GTX 480 / GTX 580; columns: per-tree ms and J, n-tree
d:hh:mm and MJ.  Prose anchors: GPHAST ≈ 11 h for APSP vs ~200 days for
4-core Dijkstra; M4-12 2.8–3.6x worse J/tree than the GPU box; the
GTX 580 ~20% faster than the GTX 480; GPHAST amortizes CH preprocessing
(302 s) after 319 trees.
"""

from __future__ import annotations

from bench_table3_gphast import paper_scale_level_profile
from common import (
    EUROPE_COUNTS,
    EUROPE_DIJKSTRA_COUNTS,
    fmt,
    print_table,
)
from repro.simulator import (
    GTX_480,
    GTX_580,
    CostModel,
    GpuCostModel,
    apsp_report,
    machine,
)

N_EUROPE = 18_000_000


def configurations():
    """(label, per-tree ms, watts) for every Table VI row."""
    rows = []
    for name in ("M1-4", "M2-6", "M4-12"):
        spec = machine(name)
        cm = CostModel(spec)
        dij = cm.dijkstra_per_tree_parallel(
            EUROPE_DIJKSTRA_COUNTS, spec.cores, pinned=True
        )
        rows.append((f"Dijkstra {name}", dij, spec.watts_full_load))
    for name in ("M1-4", "M2-6", "M4-12"):
        spec = machine(name)
        cm = CostModel(spec)
        sse = name in ("M1-4", "M2-6")
        ph = cm.phast_per_tree_parallel(
            EUROPE_COUNTS, spec.cores, pinned=True, trees_per_sweep=16, sse=sse
        )
        rows.append((f"PHAST {name}", ph, spec.watts_full_load))
    lv, la = paper_scale_level_profile()
    for gpu in (GTX_480, GTX_580):
        rep = GpuCostModel(gpu).sweep_cost(lv, la, 16, n=N_EUROPE, m=33_800_000)
        rows.append((f"GPHAST {gpu.name}", rep.per_tree_ms, gpu.watts_full_system))
    return rows


def run(quiet: bool = False):
    rows = []
    reports = {}
    for label, ms, watts in configurations():
        rep = apsp_report(label, ms, watts, N_EUROPE)
        reports[label] = rep
        rows.append(
            [
                label,
                fmt(rep.per_tree_ms, 2),
                fmt(rep.per_tree_joules, 2),
                rep.total_dhm,
                fmt(rep.total_megajoules, 1),
            ]
        )
    if not quiet:
        print_table(
            "Table VI modeled (Europe scale, best configuration per device)",
            ["algorithm/device", "ms/tree", "J/tree", "n trees d:hh:mm", "MJ"],
            rows,
        )
        print(
            "paper anchors: GPHAST(580) APSP ~0:11:00 d:hh:mm; Dijkstra "
            "4-core ~200 days; M4-12 J/tree 2.8-3.6x the GPU box"
        )
    return reports


# -- pytest shape checks -----------------------------------------------------


def test_gphast_apsp_about_half_a_day():
    reports = run(quiet=True)
    hours = reports["GPHAST GTX 580"].total_seconds / 3600
    assert 6 < hours < 18  # paper: ~11 hours


def test_dijkstra_apsp_months():
    reports = run(quiet=True)
    days = reports["Dijkstra M1-4"].total_seconds / 86400
    assert days > 100  # paper: ~200 days on 4 cores


def test_gtx580_faster_than_gtx480():
    reports = run(quiet=True)
    r580 = reports["GPHAST GTX 580"].per_tree_ms
    r480 = reports["GPHAST GTX 480"].per_tree_ms
    assert r580 < r480
    assert (r480 - r580) / r580 < 0.45  # paper: ~20%


def test_m4_12_energy_worse_than_gpu():
    reports = run(quiet=True)
    ratio = (
        reports["PHAST M4-12"].per_tree_joules
        / reports["GPHAST GTX 580"].per_tree_joules
    )
    assert 1.5 < ratio < 6.0  # paper: 2.8-3.6


def test_gphast_beats_all_cpus():
    reports = run(quiet=True)
    gpu = reports["GPHAST GTX 580"].per_tree_ms
    for label, rep in reports.items():
        if label.startswith(("PHAST", "Dijkstra")):
            assert gpu < rep.per_tree_ms, label


def test_ch_amortization():
    """CH preprocessing pays for itself within a few hundred trees."""
    reports = run(quiet=True)
    ch_seconds = 302.0  # paper: CH preprocessing on 4 cores
    dij = reports["Dijkstra M1-4"].per_tree_ms
    gph = reports["GPHAST GTX 580"].per_tree_ms
    breakeven = ch_seconds * 1e3 / (dij - gph)
    assert 100 < breakeven < 1500  # paper: 319 trees


if __name__ == "__main__":
    run()
