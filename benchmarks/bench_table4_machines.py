"""Table IV — machine specifications.

A static table in the paper; here it doubles as the machine catalog the
cost model consumes, printed for cross-checking.
"""

from __future__ import annotations

from common import print_table
from repro.simulator import MACHINES


def run(quiet: bool = False):
    rows = []
    for name in ("M2-1", "M2-4", "M4-12", "M1-4", "M2-6"):
        m = MACHINES[name]
        rows.append(
            [
                m.name,
                m.brand,
                m.cpu,
                f"{m.clock_ghz:.2f}",
                m.sockets,
                m.cores,
                m.mem_type,
                m.mem_gb,
                m.mem_clock_mhz,
                f"{m.bandwidth_gbs:.1f}",
                m.numa_nodes,
                f"{m.watts_full_load:.0f}" if m.watts_full_load else "-",
            ]
        )
    if not quiet:
        print_table(
            "Table IV: machines",
            [
                "name", "brand", "CPU", "GHz", "P", "c",
                "mem", "GB", "MHz", "GB/s", "B", "watts",
            ],
            rows,
        )
    return rows


def test_catalog_matches_paper_claims():
    """Spot checks against figures quoted in the paper's prose."""
    assert MACHINES["M1-4"].cpu == "Core-i7 920"
    assert MACHINES["M1-4"].clock_ghz == 2.67
    assert MACHINES["M1-4"].mem_gb == 12
    assert MACHINES["M2-6"].bandwidth_gbs == 32.0  # "high-end Intel Xeon"
    assert MACHINES["M4-12"].cores == 48
    assert MACHINES["M4-12"].numa_nodes == 8
    assert MACHINES["M4-12"].watts_full_load == 747.0
    assert MACHINES["M1-4"].watts_full_load == 163.0
    assert MACHINES["M2-6"].watts_full_load == 332.0


def test_naming_convention():
    for name, m in MACHINES.items():
        p, c_per = name.removeprefix("M").split("-")
        assert m.sockets == int(p)
        assert m.cores == int(p) * int(c_per)


if __name__ == "__main__":
    run()
