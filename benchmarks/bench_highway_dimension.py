"""Extension — the low-highway-dimension premise (Section II-B).

"CH works well in networks with low highway dimension.  Roughly
speaking, these are graphs in which one can find a very small set of
important vertices that hit all long shortest paths."  This target
measures that premise on the synthetic inputs: greedy hitting-set sizes
for sampled long shortest paths, versus a degree/size-matched random
graph, and the hitters' position in the CH order.
"""

from __future__ import annotations

import numpy as np

from common import fmt, load_instance, print_table
from repro.graph import (
    INF,
    hitting_set_profile,
    long_path_hitting_set,
    random_graph,
)
from repro.sssp import dijkstra


def _median_distance(g):
    d = dijkstra(g, 0, with_parents=False).dist
    return int(np.median(d[d < INF]))


def run(quiet: bool = False):
    inst = load_instance(scale=32)
    g, ch = inst.graph, inst.ch
    med = _median_distance(g)
    rows = []
    for label, graph in [
        ("road network", g),
        ("random graph (same n, m)", random_graph(g.n, g.m, 100, seed=1, connected=True)),
    ]:
        thr = _median_distance(graph)
        for mult in (0.5, 1.0, 2.0):
            profile = hitting_set_profile(
                graph, [int(thr * mult)], num_sources=24, seed=0
            )
            t, paths, cover = profile[0]
            rows.append(
                [label, t, paths, cover, fmt(cover / max(1, paths), 2)]
            )
    if not quiet:
        print_table(
            "Highway-dimension probe: hitting sets for long shortest paths",
            ["graph", "min length", "paths", "cover", "cover/paths"],
            rows,
        )
    cover = long_path_hitting_set(g, min_length=med, num_sources=24, seed=0)
    pct = ch.rank[cover].mean() / g.n if cover.size else float("nan")
    if not quiet:
        print(
            f"greedy hitters sit at CH-rank percentile {pct:.0%} "
            "(CH independently identifies the same 'important' vertices)"
        )
    return rows


def test_road_has_lower_dimension_than_random():
    rows = run(quiet=True)
    road_rows = [r for r in rows if r[0] == "road network"]
    rand_rows = [r for r in rows if r[0].startswith("random")]
    road_ratio = np.mean([float(r[4]) for r in road_rows])
    rand_ratio = np.mean([float(r[4]) for r in rand_rows])
    assert road_ratio < rand_ratio


if __name__ == "__main__":
    run()
