"""Ablations on the design choices DESIGN.md calls out.

* implicit vs explicit initialization (Section IV-C);
* witness-search hop limits (Section VIII-A);
* CH priority function terms (Section VIII-A);
* GPU warp ordering: level vs degree (Section VI).
"""

from __future__ import annotations

import numpy as np

from common import fmt, load_instance, print_table, time_ms
from repro.ch import CHParams, contract_graph
from repro.core import GphastEngine, PhastEngine
from repro.graph import europe_like


def ablation_init(quiet: bool = False):
    """Implicit initialization removes the per-query O(n) fill."""
    inst = load_instance()
    implicit = inst.engine(explicit_init=False)
    explicit = inst.engine(explicit_init=True)
    t_imp = time_ms(lambda: implicit.tree(0), 10)
    t_exp = time_ms(lambda: explicit.tree(0), 10)
    rows = [
        ["implicit (visit marks)", fmt(t_imp, 3)],
        ["explicit (fill with inf)", fmt(t_exp, 3)],
        ["saving", f"{(t_exp - t_imp) / t_exp * 100:.0f}%"],
    ]
    if not quiet:
        print_table(
            "Ablation: initialization (paper: ~10 ms of 172 ms saved)",
            ["variant", "ms/tree"],
            rows,
        )
        # At benchmark scale the fill stays in cache and costs nothing;
        # the paper-scale cost is a pure streaming write of n labels.
        from repro.simulator import CostModel, machine
        from common import EUROPE_COUNTS

        fill_ms = CostModel(machine("M1-4"))._stream_ms(
            EUROPE_COUNTS.n * 4
        )
        print(
            f"modeled fill cost at paper scale: {fill_ms:.1f} ms "
            "(paper: ~10 ms) — negligible at benchmark scale where the "
            "label array stays cache-resident"
        )
    return t_imp, t_exp


def ablation_witness(quiet: bool = False, scale: int = 24):
    """Hop limits trade preprocessing time against shortcut count."""
    g = europe_like(scale=scale)
    rows = []
    results = {}
    for label, schedule in [
        ("1 hop", ((None, 1),)),
        ("5 hops", ((None, 5),)),
        ("paper schedule", CHParams().hop_schedule),
        ("unlimited", ((None, None),)),
    ]:
        params = CHParams(hop_schedule=schedule)
        ch = contract_graph(g, params)
        stats = ch.preprocessing_stats
        results[label] = ch
        rows.append(
            [
                label,
                fmt(stats["seconds"], 2),
                ch.num_shortcuts,
                ch.num_levels,
                fmt(time_ms(lambda: PhastEngine(ch).tree(0), 5), 3),
            ]
        )
    if not quiet:
        print_table(
            f"Ablation: witness hop limits (n={g.n})",
            ["limit", "CH build s", "shortcuts", "levels", "PHAST ms"],
            rows,
        )
    return results


def ablation_lazy_updates(quiet: bool = False, scale: int = 32):
    """Eager neighbour updates (paper) vs pure lazy re-checks."""
    g = europe_like(scale=scale)
    rows = []
    for label, params in [
        ("eager (paper)", CHParams()),
        ("pure lazy", CHParams(neighbor_updates=False)),
    ]:
        ch = contract_graph(g, params)
        stats = ch.preprocessing_stats
        eng = PhastEngine(ch)
        rows.append(
            [
                label,
                fmt(stats["seconds"], 2),
                stats["priority_evaluations"],
                ch.num_shortcuts,
                fmt(time_ms(lambda: eng.tree(0), 5), 3),
            ]
        )
    if not quiet:
        print_table(
            f"Ablation: priority update policy (n={g.n})",
            ["policy", "CH build s", "priority evals", "shortcuts", "PHAST ms"],
            rows,
        )
    return rows


def ablation_priority(quiet: bool = False, scale: int = 24):
    """The paper's priority terms vs pure edge difference."""
    g = europe_like(scale=scale)
    rows = []
    for label, params in [
        ("paper: 2ED+CN+H+5L", CHParams()),
        ("pure edge difference", CHParams(cn_weight=0, h_weight=0, level_weight=0)),
        ("no level term", CHParams(level_weight=0)),
        ("heavy level term", CHParams(level_weight=20)),
    ]:
        ch = contract_graph(g, params)
        eng = PhastEngine(ch)
        rows.append(
            [
                label,
                ch.num_shortcuts,
                ch.num_levels,
                fmt(time_ms(lambda: eng.tree(0), 5), 3),
            ]
        )
    if not quiet:
        print_table(
            f"Ablation: CH priority function (n={g.n}; the paper notes "
            "any good function works)",
            ["priority", "shortcuts", "levels", "PHAST ms"],
            rows,
        )
    return rows


def ablation_gpu_order(quiet: bool = False):
    """Section VI: degree-ordered warps hurt the label gather.

    The functional SIMT simulator executes both schedules against the
    real sweep structure, so the transaction counts are measured (from
    lane addresses), not assumed.
    """
    from repro.simulator import GpuFunctionalSim

    inst = load_instance()
    sim = GpuFunctionalSim(inst.engine().sweep)
    rows = []
    for k in (1, 16, 32):
        level = sim.run(k)
        degree = sim.run(k, vertex_order="degree")
        rows.append(
            [
                k,
                f"{level.total_transactions:,}",
                f"{degree.total_transactions:,}",
                fmt(degree.total_transactions / level.total_transactions, 2),
                f"{level.mean_divergence_waste:.0%}",
            ]
        )
    if not quiet:
        print_table(
            "Ablation: GPU vertex order (functional SIMT sim, 32B "
            "transactions per sweep)",
            ["k", "level-order tx", "degree-order tx", "penalty", "divergence"],
            rows,
        )
        print(
            "paper: degree ordering 'has a strong negative effect on the "
            "locality of the distance labels' — rejected; k=32 removes "
            "divergence entirely (all lanes of a warp share a vertex)"
        )
    return rows


def run(quiet: bool = False):
    ablation_init(quiet)
    ablation_witness(quiet)
    ablation_lazy_updates(quiet)
    ablation_priority(quiet)
    ablation_gpu_order(quiet)


def test_lazy_updates_correct_and_cheaper():
    from repro.sssp import dijkstra

    g = europe_like(scale=16)
    eager = contract_graph(g)
    lazy = contract_graph(g, CHParams(neighbor_updates=False))
    assert (
        lazy.preprocessing_stats["priority_evaluations"]
        < eager.preprocessing_stats["priority_evaluations"]
    )
    ref = dijkstra(g, 0, with_parents=False).dist
    assert np.array_equal(PhastEngine(lazy).tree(0).dist, ref)


# -- pytest shape checks -----------------------------------------------------


def test_implicit_init_not_slower(europe):
    implicit = europe.engine(explicit_init=False)
    explicit = europe.engine(explicit_init=True)
    t_imp = time_ms(lambda: implicit.tree(0), 10)
    t_exp = time_ms(lambda: explicit.tree(0), 10)
    assert t_imp <= t_exp * 1.15


def test_tighter_hop_limits_add_shortcuts():
    g = europe_like(scale=16)
    strict = contract_graph(g, CHParams(hop_schedule=((None, 1),)))
    loose = contract_graph(g, CHParams(hop_schedule=((None, None),)))
    assert strict.num_shortcuts >= loose.num_shortcuts
    # Per-search work shrinks with the limit (total time may not: the
    # extra shortcuts densify later contractions).
    assert strict.preprocessing_stats["witness_searches"] > 0


def test_degree_order_penalty_positive(europe):
    engine = GphastEngine(europe.ch)
    for k in (1, 16):
        level = engine.model.sweep_cost(
            engine._level_verts, engine._level_arcs, k
        ).per_tree_ms
        degree = engine.degree_ordered_report(k).per_tree_ms
        assert degree > level


def test_any_priority_function_correct():
    from repro.sssp import dijkstra

    g = europe_like(scale=12)
    ref = dijkstra(g, 0, with_parents=False).dist
    for params in (
        CHParams(cn_weight=0, h_weight=0, level_weight=0),
        CHParams(level_weight=20),
    ):
        ch = contract_graph(g, params)
        assert np.array_equal(PhastEngine(ch).tree(0).dist, ref)


if __name__ == "__main__":
    run()
