"""Session fixtures for the benchmark harness."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import load_instance  # noqa: E402


@pytest.fixture(scope="session")
def europe():
    """The default benchmark instance (Europe-like, travel times)."""
    return load_instance("europe", "time")


@pytest.fixture(scope="session")
def europe_engine(europe):
    return europe.engine()
