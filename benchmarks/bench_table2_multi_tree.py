"""Table II — multiple trees per sweep, cores, and SSE.

Paper: per-tree ms for k ∈ {4, 8, 16} sources per sweep × {1, 2, 4}
cores, with and without SSE, Europe/time, M1-4.  Visible paper cells:
k=16 row 96.8 (37.1) / 49.4 (22.1) / 25.9 (18.8); k=4 and k=8 rows
partially: (67.6), 61.5 (35.5), 32.5 (24.4); (51.2), 53.5 (28.0),
28.3 (20.8).

Reproduced as (a) measured wall-clock per-tree times of the NumPy
multi-tree sweep (the "SSE lanes" are NumPy's vectorization, so there
is no separate scalar/SSE pair — the measured column corresponds to the
vectorized variant) with worker processes standing in for cores, and
(b) the cost model's paper-scale grid with its SSE toggle.
"""

from __future__ import annotations

from common import (
    EUROPE_COUNTS,
    fmt,
    load_instance,
    print_table,
    random_sources,
    time_ms,
)
from repro.core import resolve_workers, trees_per_core
from repro.simulator import CostModel, machine

KS = (4, 8, 16)
CORES = (1, 2, 4)

#: The Table II cells preserved in the extracted text: (k, cores) ->
#: (no-SSE ms, SSE ms); None where the extraction lost the cell.
PAPER = {
    (4, 1): (None, 67.6),
    (4, 2): (61.5, 35.5),
    (4, 4): (32.5, 24.4),
    (8, 1): (None, 51.2),
    (8, 2): (53.5, 28.0),
    (8, 4): (28.3, 20.8),
    (16, 1): (96.8, 37.1),
    (16, 2): (49.4, 22.1),
    (16, 4): (25.9, 18.8),
}


def measure(inst, batch: int = 192) -> dict[tuple[int, int], float]:
    """Measured per-tree wall-clock ms for each (k, workers) cell.

    Worker-pool startup is amortized over a ``batch`` of trees per
    measurement (at paper scale one tree costs far more than a fork; at
    benchmark scale the batch restores that ratio).
    """
    out = {}
    for k in KS:
        for cores in CORES:
            sources = random_sources(inst.graph.n, batch, seed=k)
            ms = time_ms(
                lambda: trees_per_core(
                    inst.ch,
                    sources,
                    num_workers=cores,
                    sources_per_sweep=k,
                    reduce=_drop,
                ),
                repeats=2,
            )
            out[(k, cores)] = ms / len(sources)
    return out


def _drop(source, dist):
    return None


def modeled() -> dict[tuple[int, int, bool], float]:
    cm = CostModel(machine("M1-4"))
    out = {}
    for k in KS:
        for cores in CORES:
            for sse in (False, True):
                out[(k, cores, sse)] = cm.phast_per_tree_parallel(
                    EUROPE_COUNTS, cores, trees_per_sweep=k, sse=sse
                )
    return out


def run(quiet: bool = False):
    inst = load_instance()
    meas = measure(inst)
    rows = [
        [f"k={k}"] + [fmt(meas[(k, c)], 3) for c in CORES] for k in KS
    ]
    if not quiet:
        import os

        print_table(
            f"Table II measured (ms/tree, n={inst.graph.n}, workers = cores)",
            ["sources/sweep", "1 worker", "2 workers", "4 workers"],
            rows,
        )
        _, fell_back = resolve_workers(max(CORES))
        if fell_back:
            print(
                f"note: host has {os.cpu_count()} CPU(s) — multi-worker "
                "requests fell back to the serial engine (no process "
                "pool), so the worker columns are serial measurements; "
                "see the modeled table for the multi-core landscape"
            )
        elif (os.cpu_count() or 1) < 4:
            print(
                f"note: host has {os.cpu_count()} CPU(s) — worker columns "
                "cannot show real parallel speedup here; see the modeled "
                "table for the multi-core landscape"
            )
    model = modeled()
    mrows = []
    for k in KS:
        cells = []
        for c in CORES:
            paper = PAPER[(k, c)]
            cells.append(
                f"{fmt(model[(k, c, False)], 1)} ({fmt(model[(k, c, True)], 1)})"
                + (
                    f" / paper {fmt(paper[0] or float('nan'), 1)}"
                    f" ({fmt(paper[1], 1)})"
                )
            )
        mrows.append([f"k={k}"] + cells)
    if not quiet:
        print_table(
            "Table II modeled at paper scale, no-SSE (SSE) vs paper",
            ["sources/sweep", "1 core", "2 cores", "4 cores"],
            mrows,
        )
    return meas, model


# -- pytest shape checks -----------------------------------------------------


def test_more_sources_per_sweep_helps(europe):
    eng = europe.engine()
    t1 = time_ms(lambda: eng.tree(0), 5)
    sources = random_sources(europe.graph.n, 16, seed=0)
    t16 = time_ms(lambda: eng.trees(sources), 3) / 16
    assert t16 < t1  # paper: 172 -> 96.8 per tree


def test_model_matches_visible_cells():
    model = modeled()
    for (k, c), (plain, sse) in PAPER.items():
        if plain is not None:
            assert abs(model[(k, c, False)] - plain) / plain < 0.35, (k, c)


def test_model_sse_always_helps():
    model = modeled()
    for k in KS:
        for c in CORES:
            assert model[(k, c, True)] <= model[(k, c, False)]


def test_bench_multi_tree_16(benchmark, europe_engine):
    sources = random_sources(europe_engine.sweep.n, 16, seed=0)
    benchmark(lambda: europe_engine.trees(sources))


def test_bench_multi_tree_4(benchmark, europe_engine):
    sources = random_sources(europe_engine.sweep.n, 4, seed=0)
    benchmark(lambda: europe_engine.trees(sources))


if __name__ == "__main__":
    run()
