"""Table V — Dijkstra and PHAST across five architectures.

Paper columns per machine: single thread; 1 tree/core free vs pinned;
(PHAST also) 16 trees/core free vs pinned — average ms per tree at
Europe scale.  This environment has none of those machines, so the
table is produced by the calibrated cost model (see
``repro.simulator.cost_model``), plus measured multiprocessing numbers
on the actual host as a sanity check of the tree-per-core driver.

Shape targets from the paper's prose: PHAST ≈ 19x Dijkstra on every
machine single-threaded; pinning essential on multi-socket boxes
(M4-12: 34x on 48 cores pinned, < 6x free); 16 trees/sweep another ~2x.
"""

from __future__ import annotations

import os

from common import (
    EUROPE_COUNTS,
    EUROPE_DIJKSTRA_COUNTS,
    fmt,
    load_instance,
    print_table,
    random_sources,
    time_ms,
)
from repro.core import resolve_workers, trees_per_core
from repro.simulator import MACHINES, CostModel, machine

ORDER = ("M2-1", "M2-4", "M4-12", "M1-4", "M2-6")
SSE_CAPABLE = {"M1-4", "M2-6"}  # the others lack SSE 4.2 (paper VIII-E)


def modeled_rows():
    rows = []
    for name in ORDER:
        spec = machine(name)
        cm = CostModel(spec)
        cores = spec.cores
        dij_single = cm.dijkstra_single(EUROPE_DIJKSTRA_COUNTS)
        dij_free = cm.dijkstra_per_tree_parallel(
            EUROPE_DIJKSTRA_COUNTS, cores, pinned=False
        )
        dij_pin = cm.dijkstra_per_tree_parallel(
            EUROPE_DIJKSTRA_COUNTS, cores, pinned=True
        )
        sse = name in SSE_CAPABLE
        ph_single = cm.phast_single(EUROPE_COUNTS)
        ph_free = cm.phast_per_tree_parallel(EUROPE_COUNTS, cores, pinned=False)
        ph_pin = cm.phast_per_tree_parallel(EUROPE_COUNTS, cores, pinned=True)
        ph16_free = cm.phast_per_tree_parallel(
            EUROPE_COUNTS, cores, pinned=False, trees_per_sweep=16, sse=sse
        )
        ph16_pin = cm.phast_per_tree_parallel(
            EUROPE_COUNTS, cores, pinned=True, trees_per_sweep=16, sse=sse
        )
        rows.append(
            [
                name,
                fmt(dij_single, 0),
                fmt(dij_free, 0),
                fmt(dij_pin, 0),
                fmt(ph_single, 0),
                fmt(ph_free, 1),
                fmt(ph_pin, 1),
                fmt(ph16_free, 1),
                fmt(ph16_pin, 1),
            ]
        )
    return rows


def run(quiet: bool = False):
    rows = modeled_rows()
    if not quiet:
        print_table(
            "Table V modeled (ms/tree at Europe scale)",
            [
                "machine",
                "Dij 1t", "Dij free", "Dij pin",
                "PHAST 1t", "PHAST free", "PHAST pin",
                "16/core free", "16/core pin",
            ],
            rows,
        )
        print(
            "paper anchors: PHAST/Dijkstra ratio ~19x everywhere; "
            "M4-12 pinned 48-core speedup 34x; pinning irrelevant on M1-4"
        )

    # Structural cross-check: derive the pinned/unpinned landscape from
    # an explicit NUMA topology with waterfilled bandwidth instead of
    # the closed-form contention terms.
    from repro.simulator import NumaTopology

    topo_rows = []
    for name in ORDER:
        spec = machine(name)
        cm = CostModel(spec)
        topo = NumaTopology.from_machine(spec)
        bytes_tree = cm._phast_bytes_per_tree(EUROPE_COUNTS, 1)
        cpu = cm._cpu_ms(cm._phast_cycles_per_tree(EUROPE_COUNTS, 1, sse=False))
        topo_rows.append(
            [
                name,
                fmt(topo.per_tree_ms(bytes_tree, cpu, spec.cores, pinned=True), 1),
                fmt(topo.per_tree_ms(bytes_tree, cpu, spec.cores, pinned=False), 1),
            ]
        )
    if not quiet:
        print_table(
            "Table V cross-check: explicit NUMA topology (PHAST 1 tree/core)",
            ["machine", "pinned", "free"],
            topo_rows,
        )

    # Host sanity check: real fork-based scaling of the driver.
    inst = load_instance()
    cpus = min(4, os.cpu_count() or 1)
    sources = random_sources(inst.graph.n, 128, seed=0)
    t1 = time_ms(
        lambda: trees_per_core(inst.ch, sources, num_workers=1, reduce=_drop),
        repeats=2,
    )
    tp = time_ms(
        lambda: trees_per_core(inst.ch, sources, num_workers=cpus, reduce=_drop),
        repeats=2,
    )
    _, fell_back = resolve_workers(cpus)
    if not quiet and fell_back:
        print(
            f"note: single-CPU host — the {cpus}-worker row fell back to "
            "the serial engine, so both rows measure the same serial path"
        )
    if not quiet:
        print_table(
            f"host sanity check ({len(sources)} trees, n={inst.graph.n}, "
            f"host CPUs={os.cpu_count()})",
            ["workers", "total ms", "ms/tree"],
            [
                [1, fmt(t1, 0), fmt(t1 / len(sources), 3)],
                [cpus, fmt(tp, 0), fmt(tp / len(sources), 3)],
            ],
        )
    return rows


def _drop(source, dist):
    return None


# -- pytest shape checks -----------------------------------------------------


def test_ratio_constant_across_machines():
    for name in ORDER:
        cm = CostModel(machine(name))
        ratio = cm.dijkstra_single(EUROPE_DIJKSTRA_COUNTS) / cm.phast_single(
            EUROPE_COUNTS
        )
        assert 10 < ratio < 25, name


def test_m4_12_pinning_shape():
    cm = CostModel(machine("M4-12"))
    single = cm.phast_single(EUROPE_COUNTS)
    pin = cm.phast_per_tree_parallel(EUROPE_COUNTS, 48, pinned=True)
    free = cm.phast_per_tree_parallel(EUROPE_COUNTS, 48, pinned=False)
    assert 20 < single / pin <= 48  # paper: 34
    assert single / free < 10  # paper: < 6


def test_16_per_core_roughly_halves():
    """Paper: '16 trees per core ... another factor of 2'."""
    for name in ORDER:
        spec = machine(name)
        cm = CostModel(spec)
        base = cm.phast_per_tree_parallel(EUROPE_COUNTS, spec.cores, pinned=True)
        k16 = cm.phast_per_tree_parallel(
            EUROPE_COUNTS, spec.cores, pinned=True, trees_per_sweep=16
        )
        assert 1.2 < base / k16 < 5.0, name


def test_modern_machines_are_faster():
    newer = CostModel(machine("M2-6")).phast_single(EUROPE_COUNTS)
    older = CostModel(machine("M2-1")).phast_single(EUROPE_COUNTS)
    assert newer < older / 2


if __name__ == "__main__":
    run()
