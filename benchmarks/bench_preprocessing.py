"""Preprocessing throughput — sequential vs batched contraction.

The paper treats CH preprocessing as an offline cost (Section VIII-A
reports ~hours for Europe with the tuned priority function).  This
bench tracks the reproduction's two contraction engines against each
other on Europe-like time-metric networks:

* ``lazy`` — the one-vertex-at-a-time reference contractor;
* ``batched`` — the vectorized independent-set engine
  (:mod:`repro.ch.batched`).

For each instance size it reports wall-clock, throughput
(vertices/second), shortcut count, round count and peak round size,
and writes the whole record to ``BENCH_preprocessing.json`` next to
this file.  The sequential engine is skipped beyond
``SEQUENTIAL_LIMIT`` vertices (it would take tens of minutes there —
the gap this bench exists to document); the skip is recorded in the
JSON rather than silently dropped.

A second section sweeps the batched engine over :class:`TaskPool`
worker counts (1/2/4/8 by default) on the smallest instance and
reports the speedup over the single-process run plus the shortcut
count per worker count — the counts must be identical, since the
parallel engine is bit-deterministic in the worker count.  Worker
counts above one are *forced* (``force_pool=True``), so on a 1-CPU
host the sweep still exercises real worker processes; the host CPU
count is recorded so flat speedups there read as honest, not broken.

``REPRO_BENCH_PREP_SIZES`` overrides the vertex-count list (comma
separated), e.g. ``REPRO_BENCH_PREP_SIZES=4000`` for a CI smoke run;
``REPRO_BENCH_PREP_WORKERS`` overrides the worker sweep the same way.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from common import fmt, print_table
from repro.ch import CHParams, contract_graph, contract_graph_batched
from repro.graph import europe_like
from repro.utils import bulk_compute

#: Target vertex counts; europe_like(scale) has scale² vertices.
DEFAULT_SIZES = (4_000, 20_000, 100_000)

#: Worker counts for the parallel-preprocessing sweep.
DEFAULT_WORKER_SWEEP = (1, 2, 4, 8)

#: Largest instance the lazy sequential contractor is asked to run.
SEQUENTIAL_LIMIT = 25_000

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_preprocessing.json"


def _sizes() -> tuple[int, ...]:
    env = os.environ.get("REPRO_BENCH_PREP_SIZES")
    if not env:
        return DEFAULT_SIZES
    return tuple(int(x) for x in env.split(",") if x.strip())


def _worker_sweep() -> tuple[int, ...]:
    env = os.environ.get("REPRO_BENCH_PREP_WORKERS")
    if not env:
        return DEFAULT_WORKER_SWEEP
    return tuple(int(x) for x in env.split(",") if x.strip())


def _measure(graph, strategy: str) -> dict:
    params = CHParams(strategy=strategy)
    start = time.perf_counter()
    with bulk_compute():
        ch = contract_graph(graph, params)
    seconds = time.perf_counter() - start
    stats = ch.preprocessing_stats
    entry = {
        "strategy": strategy,
        "n": int(graph.n),
        "m": int(graph.m),
        "seconds": round(seconds, 3),
        "vertices_per_sec": round(graph.n / seconds, 1) if seconds else None,
        "shortcuts": int(ch.num_shortcuts),
        "levels": int(ch.num_levels),
        "witness_searches": int(stats.get("witness_searches", 0)),
    }
    if strategy == "batched":
        entry["rounds"] = int(stats.get("rounds", 0))
        entry["peak_batch"] = int(stats.get("peak_batch", 0))
        entry["mean_batch"] = round(float(stats.get("mean_batch", 0.0)), 1)
        entry["rebuilds"] = int(stats.get("rebuilds", 0))
    return entry


def _measure_workers(graph, workers: int) -> dict:
    params = CHParams(strategy="batched")
    start = time.perf_counter()
    with bulk_compute():
        ch = contract_graph_batched(
            graph, params, num_workers=workers, force_pool=workers > 1
        )
    seconds = time.perf_counter() - start
    stats = ch.preprocessing_stats
    return {
        "workers": workers,
        "parallel": bool(stats["parallel"]),
        "seconds": round(seconds, 3),
        "shortcuts": int(ch.num_shortcuts),
        "witness_searches": int(stats.get("witness_searches", 0)),
        "publish_seconds": round(float(stats.get("publish_seconds", 0.0)), 3),
    }


def _sweep_workers(graph, record: dict, quiet: bool) -> None:
    entries = [_measure_workers(graph, w) for w in _worker_sweep()]
    baseline = entries[0]["seconds"]
    rows = []
    for e in entries:
        e["speedup"] = (
            round(baseline / e["seconds"], 2) if e["seconds"] else None
        )
        rows.append([
            e["workers"],
            f"{fmt(e['seconds'])}s",
            f"{fmt(e['speedup'])}x",
            e["shortcuts"],
            f"{fmt(e['publish_seconds'])}s",
        ])
    counts = {e["shortcuts"] for e in entries}
    if len(counts) != 1:
        record["notes"].append(
            f"DETERMINISM VIOLATION: shortcut counts differ across "
            f"worker counts: {sorted(counts)}"
        )
    record["worker_sweep"] = {"n": int(graph.n), "entries": entries}
    if not quiet:
        print_table(
            f"Parallel preprocessing: TaskPool worker sweep "
            f"(n={graph.n}, {os.cpu_count()} host CPUs, forced pool)",
            ["workers", "seconds", "speedup", "shortcuts", "publish"],
            rows,
        )


def run(quiet: bool = False) -> dict:
    record: dict = {
        "bench": "preprocessing",
        "metric": "europe-like, time metric",
        "sequential_limit": SEQUENTIAL_LIMIT,
        "cpus": os.cpu_count(),
        "entries": [],
        "notes": [],
    }
    rows = []
    sweep_graph = None  # smallest instance; reused for the worker sweep
    for target in _sizes():
        scale = max(2, round(math.sqrt(target)))
        graph = europe_like(scale=scale, metric="time", seed=0)
        if sweep_graph is None or graph.n < sweep_graph.n:
            sweep_graph = graph
        batched = _measure(graph, "batched")
        record["entries"].append(batched)
        if graph.n <= SEQUENTIAL_LIMIT:
            seq = _measure(graph, "lazy")
            record["entries"].append(seq)
            speedup = seq["seconds"] / batched["seconds"]
            ratio = batched["shortcuts"] / seq["shortcuts"]
            seq_cell = f"{fmt(seq['seconds'])}s"
            speed_cell = f"{fmt(speedup)}x"
            ratio_cell = fmt(ratio, 3)
        else:
            record["notes"].append(
                f"sequential skipped at n={graph.n} "
                f"(> {SEQUENTIAL_LIMIT} vertices; would run for tens of "
                "minutes)"
            )
            seq_cell = speed_cell = ratio_cell = "-"
        rows.append([
            graph.n,
            f"{fmt(batched['seconds'])}s",
            fmt(batched["vertices_per_sec"], 0),
            batched["shortcuts"],
            batched["peak_batch"],
            batched["rounds"],
            seq_cell,
            speed_cell,
            ratio_cell,
        ])
    if not quiet:
        print_table(
            "CH preprocessing: batched independent-set engine vs "
            "lazy sequential",
            [
                "n", "batched", "vert/s", "shortcuts", "peak round",
                "rounds", "sequential", "speedup", "sc ratio",
            ],
            rows,
        )
    if sweep_graph is not None:
        _sweep_workers(sweep_graph, record, quiet)
    if not quiet:
        for note in record["notes"]:
            print(f"note: {note}")
    with open(OUTPUT, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    if not quiet:
        print(f"wrote {OUTPUT}")
    return record


if __name__ == "__main__":
    run()
