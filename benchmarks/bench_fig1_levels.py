"""Figure 1 — vertices per CH level.

The paper's histogram: ~half of all vertices on level 0, all but ~10k
in the lowest 20 levels, ~140 levels total for Europe with travel
times.  This target prints the measured histogram of the synthetic
instance and checks the same qualitative shape.
"""

from __future__ import annotations

import numpy as np

from common import load_instance, print_table


def run(instance=None, quiet: bool = False) -> np.ndarray:
    inst = instance or load_instance()
    hist = inst.ch.level_histogram()
    n = inst.graph.n
    if not quiet:
        rows = []
        cum = 0
        for lvl, count in enumerate(hist):
            cum += int(count)
            if lvl < 15 or count > 0 and lvl % 5 == 0 or lvl == hist.size - 1:
                rows.append(
                    [lvl, int(count), f"{count / n * 100:.1f}%", f"{cum / n * 100:.1f}%"]
                )
        print_table(
            f"Figure 1: vertices per level ({inst.name}, {hist.size} levels)",
            ["level", "vertices", "share", "cumulative"],
            rows,
        )
        print(
            f"paper (Europe/time): 140 levels, ~50% of vertices on level 0, "
            f"all but ~10k vertices in the lowest 20 levels"
        )
    return hist


# -- pytest checks on the paper's shape claims ---------------------------


def test_level_zero_dominates(europe):
    hist = europe.ch.level_histogram()
    assert hist[0] == hist.max()
    assert hist[0] > 0.2 * europe.graph.n


def test_mass_concentrated_in_low_levels(europe):
    hist = europe.ch.level_histogram()
    low20 = hist[: min(20, hist.size)].sum()
    assert low20 > 0.9 * europe.graph.n


def test_counts_decay_with_level(europe):
    hist = europe.ch.level_histogram().astype(float)
    # Top half of the hierarchy holds a tiny fraction of vertices.
    top_half = hist[hist.size // 2 :].sum()
    assert top_half < 0.05 * europe.graph.n


def test_histogram_bench(benchmark, europe):
    benchmark(europe.ch.level_histogram)


if __name__ == "__main__":
    run()
