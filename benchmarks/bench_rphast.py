"""Extension — RPHAST: one-to-many queries on restricted sweeps.

Not a paper table: this reproduces the follow-up the PHAST paper set
up (restricted sweeps for batched one-to-many / many-to-many queries,
Delling, Goldberg & Werneck).  Expected shape: selection size and
query time grow sublinearly with the target count, and for small
target sets RPHAST beats both a full PHAST sweep and per-target
Dijkstra by a wide margin.
"""

from __future__ import annotations

import numpy as np

from common import fmt, load_instance, print_table, random_sources, time_ms
from repro.core import RPhastEngine, many_to_many_buckets
from repro.sssp import dijkstra

TARGET_COUNTS = (4, 16, 64, 256, 1024)
MATRIX_SIZES = (4, 16, 64)


def run(quiet: bool = False):
    inst = load_instance()
    g, ch = inst.graph, inst.ch
    eng_full = inst.engine()
    t_full = time_ms(lambda: eng_full.tree(0), 5)
    rows = []
    for k in TARGET_COUNTS:
        targets = random_sources(g.n, k, seed=k)
        engine = RPhastEngine(ch, targets)
        t_sel = time_ms(lambda: RPhastEngine(ch, targets), 3)
        t_query = time_ms(lambda: engine.distances(0), 5)
        rows.append(
            [
                k,
                engine.size,
                f"{engine.size / g.n:.0%}",
                fmt(t_sel, 2),
                fmt(t_query, 3),
                fmt(t_full, 3),
            ]
        )
    if not quiet:
        print_table(
            f"RPHAST one-to-many (n={g.n}; full PHAST sweep as reference)",
            [
                "targets", "selected", "of n",
                "selection ms", "query ms", "full sweep ms",
            ],
            rows,
        )

    # Square-matrix comparison against the classic CH bucket algorithm.
    mrows = []
    for size in MATRIX_SIZES:
        S = random_sources(g.n, size, seed=size)
        T = random_sources(g.n, size, seed=size + 1)
        t_buckets = time_ms(lambda: many_to_many_buckets(ch, S, T), 3)
        engine = RPhastEngine(ch, T)
        t_rphast = time_ms(lambda: engine.many_to_many(S), 3)
        mrows.append(
            [f"{size}x{size}", fmt(t_buckets, 2), fmt(t_rphast, 2)]
        )
    if not quiet:
        print_table(
            "many-to-many matrix: CH buckets vs RPHAST (total ms, "
            "selection excluded)",
            ["matrix", "buckets", "RPHAST"],
            mrows,
        )
    return rows


# -- pytest shape checks -----------------------------------------------------


def test_restricted_query_beats_full_sweep(europe):
    targets = random_sources(europe.graph.n, 8, seed=1)
    engine = RPhastEngine(europe.ch, targets)
    eng_full = europe.engine()
    # The structural saving is deterministic; the wall-clock check gets
    # a noise margin (sub-ms timings under parallel test load).
    assert engine.num_arcs < eng_full.sweep.num_arcs / 3
    t_r = time_ms(lambda: engine.distances(0), 9)
    t_f = time_ms(lambda: eng_full.tree(0), 9)
    assert t_r < t_f * 1.3


def test_selection_sublinear(europe):
    sizes = []
    for k in (4, 64, 1024):
        targets = random_sources(europe.graph.n, k, seed=k)
        sizes.append(RPhastEngine(europe.ch, targets).size)
    assert sizes[0] < sizes[1] < sizes[2] <= europe.graph.n
    # 256x more targets must cost far less than 256x the selection.
    assert sizes[2] < sizes[0] * 64


def test_one_to_many_beats_repeated_dijkstra(europe):
    g = europe.graph
    targets = random_sources(g.n, 16, seed=3)
    engine = RPhastEngine(europe.ch, targets)
    sources = random_sources(g.n, 8, seed=4)
    t_r = time_ms(lambda: engine.many_to_many(sources), 3)
    t_d = time_ms(
        lambda: [dijkstra(g, s, with_parents=False) for s in sources], 1
    )
    assert t_r < t_d


def test_bench_rphast_query(benchmark, europe):
    targets = random_sources(europe.graph.n, 64, seed=0)
    engine = RPhastEngine(europe.ch, targets)
    benchmark(lambda: engine.distances(0))


if __name__ == "__main__":
    run()
