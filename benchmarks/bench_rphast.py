"""Extension — RPHAST: one-to-many queries on restricted sweeps.

Not a paper table: this reproduces the follow-up the PHAST paper set
up (restricted sweeps for batched one-to-many / many-to-many queries,
Delling, Goldberg & Werneck).  Expected shape: selection size and
query time grow sublinearly with the target count, and for small
target sets RPHAST beats both a full PHAST sweep and per-target
Dijkstra by a wide margin.

``run_matrix`` is the distance-matrix serving benchmark: cells/sec at
``REPRO_BENCH_MATRIX_N`` (default 64) squared for the cached-RPHAST
serving path against its ablations — cold RPHAST (selection rebuilt
per request), CH buckets, |S| full PHAST sweeps, and per-pair
bidirectional CH queries — plus a selection-cache sensitivity sweep.
Results go to ``BENCH_matrix.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from common import fmt, load_instance, print_table, random_sources, time_ms
from repro.ch import ch_query
from repro.core import RPhastEngine, SelectionCache, many_to_many_buckets
from repro.sssp import dijkstra

TARGET_COUNTS = (4, 16, 64, 256, 1024)
MATRIX_SIZES = (4, 16, 64)
MATRIX_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_matrix.json"


def run(quiet: bool = False):
    inst = load_instance()
    g, ch = inst.graph, inst.ch
    eng_full = inst.engine()
    t_full = time_ms(lambda: eng_full.tree(0), 5)
    rows = []
    for k in TARGET_COUNTS:
        targets = random_sources(g.n, k, seed=k)
        engine = RPhastEngine(ch, targets)
        t_sel = time_ms(lambda: RPhastEngine(ch, targets), 3)
        t_query = time_ms(lambda: engine.distances(0), 5)
        rows.append(
            [
                k,
                engine.size,
                f"{engine.size / g.n:.0%}",
                fmt(t_sel, 2),
                fmt(t_query, 3),
                fmt(t_full, 3),
            ]
        )
    if not quiet:
        print_table(
            f"RPHAST one-to-many (n={g.n}; full PHAST sweep as reference)",
            [
                "targets", "selected", "of n",
                "selection ms", "query ms", "full sweep ms",
            ],
            rows,
        )

    # Square-matrix comparison against the classic CH bucket algorithm.
    mrows = []
    for size in MATRIX_SIZES:
        S = random_sources(g.n, size, seed=size)
        T = random_sources(g.n, size, seed=size + 1)
        t_buckets = time_ms(lambda: many_to_many_buckets(ch, S, T), 3)
        engine = RPhastEngine(ch, T)
        t_rphast = time_ms(lambda: engine.many_to_many(S), 3)
        mrows.append(
            [f"{size}x{size}", fmt(t_buckets, 2), fmt(t_rphast, 2)]
        )
    if not quiet:
        print_table(
            "many-to-many matrix: CH buckets vs RPHAST (total ms, "
            "selection excluded)",
            ["matrix", "buckets", "RPHAST"],
            mrows,
        )
    return rows


def run_matrix(quiet: bool = False):
    """Distance-matrix serving: cells/sec for every backend, plus the
    selection-cache sensitivity of the warm path."""
    inst = load_instance()
    g, ch = inst.graph, inst.ch
    n_side = int(os.environ.get("REPRO_BENCH_MATRIX_N", "64"))
    S = random_sources(g.n, n_side, seed=11)
    T = random_sources(g.n, n_side, seed=12)
    cells = len(S) * len(T)

    eng_full = inst.engine()
    reference = np.stack([eng_full.tree(s).dist[T] for s in S])

    warm = RPhastEngine(ch, T, search_cache=len(S))
    warm.many_to_many(S)  # populate the upward-search cache
    # RPHAST emits columns in sorted-unique target order; map back to
    # the request order the other backends use.
    cols = np.searchsorted(warm.targets, np.asarray(T, dtype=np.int64))

    backends = {}

    def measure(name, fn, repeats, result):
        ms = time_ms(fn, repeats)
        backends[name] = {
            "ms": ms,
            "cells_per_sec": cells / (ms / 1e3),
            "identical": bool(np.array_equal(result, reference)),
        }

    measure("rphast_warm", lambda: warm.many_to_many(S), 5,
            warm.many_to_many(S)[:, cols])
    measure("rphast_cold",
            lambda: RPhastEngine(ch, T).many_to_many(S), 3,
            RPhastEngine(ch, T).many_to_many(S)[:, cols])
    measure("buckets", lambda: many_to_many_buckets(ch, S, T), 3,
            many_to_many_buckets(ch, S, T))
    measure("full_sweeps",
            lambda: np.stack([eng_full.tree(s).dist[T] for s in S]), 3,
            reference)
    pair_dists = np.array(
        [[ch_query(ch, s, t, stall=True).distance for t in T] for s in S]
    )
    measure("ch_pairs",
            lambda: [ch_query(ch, s, t, stall=True) for s in S for t in T],
            1, pair_dists)

    w = backends["rphast_warm"]["cells_per_sec"]
    record = {
        "experiment": "matrix",
        "n": g.n,
        "matrix": f"{len(S)}x{len(T)}",
        "cells": cells,
        "selection_size": warm.size,
        "backends": backends,
        "speedup_warm_vs_full_sweeps":
            round(w / backends["full_sweeps"]["cells_per_sec"], 2),
        "speedup_warm_vs_ch_pairs":
            round(w / backends["ch_pairs"]["cells_per_sec"], 2),
        "speedup_warm_vs_buckets":
            round(w / backends["buckets"]["cells_per_sec"], 2),
        "speedup_warm_vs_cold":
            round(w / backends["rphast_cold"]["cells_per_sec"], 2),
    }

    # Cache-hit sensitivity: a fixed request stream cycling over d
    # distinct target sets against a capacity-8 selection cache.
    # d <= 8 serves from cache after the first pass; d = 16 thrashes.
    requests = 32
    sens = []
    for distinct in (1, 4, 16):
        cache = SelectionCache(8)
        tsets = [random_sources(g.n, n_side, seed=100 + i)
                 for i in range(distinct)]
        src = random_sources(g.n, 8, seed=13)

        def serve_stream():
            for i in range(requests):
                cache.engine(
                    ch, tsets[i % distinct], search_cache=len(src)
                ).many_to_many(src)

        ms = time_ms(serve_stream, 1, warmup=0)
        snap = cache.snapshot()
        sens.append({
            "distinct_target_sets": distinct,
            "requests": requests,
            "hit_rate": round(snap["hits"] / requests, 3),
            "evictions": snap["evictions"],
            "ms_per_request": ms / requests,
        })
    record["cache_sensitivity"] = sens

    if not quiet:
        print_table(
            f"matrix {record['matrix']} backends (n={g.n}, "
            f"selection={warm.size})",
            ["backend", "ms", "cells/s", "identical"],
            [
                [name, fmt(b["ms"], 2), fmt(b["cells_per_sec"], 0),
                 str(b["identical"])]
                for name, b in backends.items()
            ],
        )
        print(
            f"warm RPHAST vs full sweeps: "
            f"{record['speedup_warm_vs_full_sweeps']}x; "
            f"vs per-pair CH: {record['speedup_warm_vs_ch_pairs']}x; "
            f"vs buckets: {record['speedup_warm_vs_buckets']}x"
        )
        print_table(
            "selection-cache sensitivity (capacity 8, 32 requests)",
            ["distinct T-sets", "hit rate", "evictions", "ms/request"],
            [
                [e["distinct_target_sets"], f"{e['hit_rate']:.0%}",
                 e["evictions"], fmt(e["ms_per_request"], 2)]
                for e in sens
            ],
        )
    with open(MATRIX_OUTPUT, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    if not quiet:
        print(f"wrote {MATRIX_OUTPUT}")
    return record


# -- pytest shape checks -----------------------------------------------------


def test_restricted_query_beats_full_sweep(europe):
    targets = random_sources(europe.graph.n, 8, seed=1)
    engine = RPhastEngine(europe.ch, targets)
    eng_full = europe.engine()
    # The structural saving is deterministic; the wall-clock check gets
    # a noise margin (sub-ms timings under parallel test load).
    assert engine.num_arcs < eng_full.sweep.num_arcs / 3
    t_r = time_ms(lambda: engine.distances(0), 9)
    t_f = time_ms(lambda: eng_full.tree(0), 9)
    assert t_r < t_f * 1.3


def test_selection_sublinear(europe):
    sizes = []
    for k in (4, 64, 1024):
        targets = random_sources(europe.graph.n, k, seed=k)
        sizes.append(RPhastEngine(europe.ch, targets).size)
    assert sizes[0] < sizes[1] < sizes[2] <= europe.graph.n
    # 256x more targets must cost far less than 256x the selection.
    assert sizes[2] < sizes[0] * 64


def test_one_to_many_beats_repeated_dijkstra(europe):
    g = europe.graph
    targets = random_sources(g.n, 16, seed=3)
    engine = RPhastEngine(europe.ch, targets)
    sources = random_sources(g.n, 8, seed=4)
    t_r = time_ms(lambda: engine.many_to_many(sources), 3)
    t_d = time_ms(
        lambda: [dijkstra(g, s, with_parents=False) for s in sources], 1
    )
    assert t_r < t_d


def test_bench_rphast_query(benchmark, europe):
    targets = random_sources(europe.graph.n, 64, seed=0)
    engine = RPhastEngine(europe.ch, targets)
    benchmark(lambda: engine.distances(0))


if __name__ == "__main__":
    run()
    run_matrix()
