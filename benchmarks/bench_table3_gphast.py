"""Table III — GPHAST: per-tree time and GPU memory vs trees/sweep.

Paper (GTX 580, Europe/time): k=1 → 5.53 ms; k=16 → 2.21 ms; memory
grows linearly in k and fills the card's 1.5 GB near k=16.

The distances are computed exactly (the sweep runs on the CPU); the
time column is the GPU model's charge for the same level-synchronous
schedule, reported at both benchmark scale and paper scale.
"""

from __future__ import annotations

import numpy as np

from common import fmt, load_instance, print_table, random_sources
from repro.core import GphastEngine
from repro.simulator import GTX_580, GpuCostModel

KS = (1, 2, 4, 8, 16)

#: Table III anchors preserved in the text.
PAPER = {1: 5.53, 16: 2.21}


def paper_scale_level_profile() -> tuple[np.ndarray, np.ndarray]:
    """Europe's level profile: half the vertices at level 0, a long
    geometric tail over 140 levels (Figure 1)."""
    levels = 140
    weights = np.geomspace(1.0, 1e-4, levels - 1)
    verts = np.empty(levels)
    verts[0] = 9_000_000
    verts[1:] = 9_000_000 * weights / weights.sum()
    arcs = verts / verts.sum() * 33_800_000
    return verts, arcs


def run(quiet: bool = False):
    inst = load_instance()
    engine = GphastEngine(inst.ch)
    rows = []
    for k in KS:
        res = engine.trees(random_sources(inst.graph.n, k, seed=k))
        r = res.report
        rows.append(
            [k, fmt(r.memory_mb, 1), fmt(r.per_tree_ms, 4), r.kernels]
        )
    if not quiet:
        print_table(
            f"Table III at benchmark scale (modeled GTX 580, n={inst.graph.n})",
            ["trees/sweep", "memory MB", "ms/tree", "kernels"],
            rows,
        )

    model = GpuCostModel(GTX_580)
    lv, la = paper_scale_level_profile()
    prows = []
    for k in KS:
        rep = model.sweep_cost(lv, la, k, n=18_000_000, m=33_800_000)
        prows.append(
            [
                k,
                fmt(rep.memory_mb, 0),
                fmt(rep.per_tree_ms, 2),
                fmt(PAPER.get(k, float("nan")), 2),
                "yes" if rep.fits_in_memory else "NO",
            ]
        )
    if not quiet:
        print_table(
            "Table III modeled at paper scale (GTX 580, Europe/time)",
            ["trees/sweep", "memory MB", "ms/tree", "paper ms", "fits 1.5GB"],
            prows,
        )
    return rows, prows


# -- pytest shape checks -----------------------------------------------------


def test_per_tree_time_decreases_with_k(europe):
    engine = GphastEngine(europe.ch)
    times = [
        engine.model.sweep_cost(engine._level_verts, engine._level_arcs, k).per_tree_ms
        for k in KS
    ]
    assert all(a >= b for a, b in zip(times, times[1:]))


def test_memory_linear_in_k(europe):
    engine = GphastEngine(europe.ch)
    sw = engine.sweep
    m1 = engine.model.device_memory_mb(sw.n, sw.num_arcs, 1)
    m16 = engine.model.device_memory_mb(sw.n, sw.num_arcs, 16)
    # Label arrays dominate at k=16: memory must grow superlinearly in
    # label count but linearly overall.
    assert 2 < m16 / m1 < 16


def test_paper_scale_anchors():
    model = GpuCostModel(GTX_580)
    lv, la = paper_scale_level_profile()
    k1 = model.sweep_cost(lv, la, 1, n=18_000_000, m=33_800_000)
    k16 = model.sweep_cost(lv, la, 16, n=18_000_000, m=33_800_000)
    assert abs(k1.per_tree_ms - PAPER[1]) / PAPER[1] < 0.35
    assert abs(k16.per_tree_ms - PAPER[16]) / PAPER[16] < 0.35
    assert k16.fits_in_memory
    assert k16.memory_mb > 1200  # nearly fills the card


def test_bench_gphast_sweep_16(benchmark, europe):
    engine = GphastEngine(europe.ch)
    sources = random_sources(europe.graph.n, 16, seed=0)
    benchmark(lambda: engine.trees(sources))


if __name__ == "__main__":
    run()
