"""Query-service throughput — dynamic micro-batching on vs off.

The server's scheduler coalesces concurrent sweep-shaped requests
(tree / one-to-many / isochrone) into one multi-source PHAST sweep.
Because a k-source sweep costs roughly ``C(k) = alpha + beta * k``
with ``alpha >> beta``, per-request service time falls from
``alpha + beta`` toward ``alpha / k + beta`` as batches fill — the
same amortization an inference server gets from batching forwards.

On top of lane amortization the scheduler coalesces requests that
share a source into one lane (singleflight) and the engine caches
upward CH search spaces, so repeat origins skip the per-source scalar
work entirely.  Both effects are what a serving workload actually
exercises: production one-to-many and isochrone traffic concentrates
on hot origins (a dispatch service's depots, a map's popular tiles),
which is the workload modelled here — every request draws its source
from a fixed set of ``REPRO_BENCH_SERVER_DEPOTS`` depots.

This bench measures it end to end, over the wire: a closed-loop load
generator sweeps the number of client threads against two
otherwise-identical in-process servers, one with ``batching=True``
and one with ``batching=False`` (strict dispatch-one, the ablation —
it also gets the search cache, so the comparison isolates batching).
The workload is one-to-many dominated — the request shape the
batching exists for.  Client-side latency histograms give p50/p99 per
load level; server metrics give realized batch sizes and lanes.

Each client keeps a small window of requests in flight on its one
connection (the protocol pipelines; responses carry ids and may come
back out of order), so offered load is ``clients x pipeline`` — a
closed-loop generator with depth-1 windows cannot offer more
concurrency than it has threads, which on a single-CPU host would
starve the batcher of company no matter the arrival policy.

A second experiment measures *availability*: a supervised two-worker
pool serves a steady closed-loop load while one worker is SIGKILLed
mid-run.  Recorded: time from the kill until the supervisor has a
full worker complement again, plus throughput and p50/p99 for the
before / during / after phases — the "during" phase contains the
crash, the re-dispatch of the victim's chunks, and the respawn, so
its tail latency is the price of one worker death.  Every request
must still be answered (the load generator treats any failure as a
bench failure).

Two further experiments exercise the front-door router
(``repro.router``).  The *router sweep* reruns the closed-loop load
against a router fronting 1 and then 2 in-thread replicas: the
1-replica point prices the router hop itself (same workload straight
at a replica vs through the front door), the 2-replica point shows
the fan-out plus the affinity hit rate the consistent-hash routing
sustains.  The *router availability* run is the acceptance scenario:
two spawned ``repro serve`` subprocess replicas behind the router,
steady load with every answer checked against a precomputed
reference, one replica SIGKILLed a third of the way in and
restarted/readmitted two thirds in — recorded: availability (must be
>= 99%), wrong answers (must be zero), and per-phase tails.

Environment knobs: ``REPRO_BENCH_SERVER_CLIENTS`` (comma-separated
thread counts, default ``1,2,4,8``), ``REPRO_BENCH_SERVER_PIPELINE``
(in-flight requests per client, default 8),
``REPRO_BENCH_SERVER_DEPOTS`` (hot-origin set size, default 8),
``REPRO_BENCH_SERVER_SECONDS`` (measurement window per point, default
2.0), ``REPRO_BENCH_ROUTER_REPLICAS`` (comma-separated replica
counts for the router sweep, default ``1,2``), ``REPRO_BENCH_SCALE``
(instance size, shared with the other benches).

Results go to ``BENCH_server.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from common import fmt, load_instance, print_table
from repro.core import PhastEngine
from repro.graph import save_graph, save_hierarchy
from repro.router import PhastRouter, ReplicaManager, RouterConfig, route_in_thread
from repro.server import PhastService, ServerClient, ServerConfig, serve_in_thread
from repro.server import protocol
from repro.utils import LatencyHistogram

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_server.json"

DEFAULT_CLIENTS = "1,2,4,8"
DEFAULT_PIPELINE = 8
DEFAULT_DEPOTS = 8
DEFAULT_SECONDS = 2.0
BATCH_MAX = 16
MAX_WAIT_MS = 3.0
TARGETS_PER_REQUEST = 8


def _client_loads() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_SERVER_CLIENTS", "").strip()
    return [int(x) for x in (raw or DEFAULT_CLIENTS).split(",")]


def _pipeline_depth() -> int:
    raw = os.environ.get("REPRO_BENCH_SERVER_PIPELINE", "").strip()
    return int(raw) if raw else DEFAULT_PIPELINE


def _depot_count() -> int:
    raw = os.environ.get("REPRO_BENCH_SERVER_DEPOTS", "").strip()
    return int(raw) if raw else DEFAULT_DEPOTS


def _measure_seconds() -> float:
    raw = os.environ.get("REPRO_BENCH_SERVER_SECONDS", "").strip()
    return float(raw) if raw else DEFAULT_SECONDS


def _router_replica_counts() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_ROUTER_REPLICAS", "").strip()
    return [int(x) for x in (raw or "1,2").split(",")]


def _drive(handle, n: int, depots: list[int], threads: int, seconds: float,
           pipeline: int) -> dict:
    """Closed-loop burst: ``threads`` clients, ``pipeline`` requests in
    flight per connection, for ``seconds``.

    Every 8th request is a point-to-point query (the p2p lane rides
    bidirectional CH, not the sweep); the rest are one-to-many from a
    depot — the sweep-shaped op that batching amortizes.  Latency is
    measured per request, send to matching response (responses may be
    out of order).
    """
    import socket

    stop = time.monotonic() + seconds
    hist = LatencyHistogram()
    counts = [0] * threads
    failures: list[str] = []
    lock = threading.Lock()

    def worker(tid: int) -> None:
        rng = np.random.default_rng(1000 + tid)
        local = LatencyHistogram()
        done = 0
        try:
            with socket.create_connection(
                (handle.host, handle.port), timeout=60
            ) as sock:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                next_id = 0
                while time.monotonic() < stop:
                    sent_at: dict[int, float] = {}
                    for _ in range(pipeline):
                        next_id += 1
                        s = depots[int(rng.integers(len(depots)))]
                        if next_id % 8 == 0:
                            msg = {"id": next_id, "op": "query", "source": s,
                                   "target": int(rng.integers(n))}
                        else:
                            msg = {"id": next_id, "op": "one_to_many",
                                   "source": s,
                                   "targets": rng.integers(
                                       n, size=TARGETS_PER_REQUEST
                                   ).tolist()}
                        sent_at[next_id] = time.perf_counter()
                        protocol.send_message(sock, msg)
                    while sent_at:
                        resp = protocol.recv_message(sock)
                        t1 = time.perf_counter()
                        if not resp.get("ok"):
                            raise RuntimeError(f"server error: {resp}")
                        local.observe(t1 - sent_at.pop(resp["id"]))
                        done += 1
        except Exception as exc:
            with lock:
                failures.append(f"client {tid}: {exc!r}")
        with lock:
            hist.merge(local)
            counts[tid] = done

    workers = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(threads)
    ]
    start = time.monotonic()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    elapsed = time.monotonic() - start
    if failures:
        raise RuntimeError(f"load generator failed: {failures[:3]}")
    total = sum(counts)
    summary = hist.summary()
    return {
        "clients": threads,
        "requests": total,
        "throughput_rps": round(total / elapsed, 1),
        "latency_ms": summary,
        "p50_ms": summary.get("p50_ms", 0.0),
        "p99_ms": summary.get("p99_ms", 0.0),
    }


def _sweep_mode(ch, graph, *, batching: bool, loads: list[int],
                seconds: float, pipeline: int, depots: list[int]) -> dict:
    config = ServerConfig(
        batch_max=BATCH_MAX, max_wait_ms=MAX_WAIT_MS, batching=batching,
        max_pending=4096,
    )
    service = PhastService(ch, graph=graph, config=config)
    points = []
    with serve_in_thread(service) as handle:
        with ServerClient(handle.host, handle.port) as probe:
            n = probe.info()["n"]
        _drive(handle, n, depots, 2, min(0.25, seconds), pipeline)  # warm
        for threads in loads:
            points.append(
                _drive(handle, n, depots, threads, seconds, pipeline)
            )
        with ServerClient(handle.host, handle.port) as probe:
            metrics = probe.metrics()
    rejected = sum(metrics["admission"]["rejected"].values())
    if rejected:
        raise RuntimeError(f"bench overloaded admission: {rejected} rejects")
    return {
        "batching": batching,
        "batch_max": BATCH_MAX if batching else 1,
        "max_wait_ms": MAX_WAIT_MS if batching else 0.0,
        "points": points,
        "mean_batch_size": metrics["batches"]["mean_size"],
        "mean_lanes_per_sweep": metrics["batches"]["mean_lanes"],
        "batch_size_histogram": metrics["batches"]["size_histogram"],
    }


def _availability_run(ch, graph, *, seconds: float, pipeline: int,
                      depots: list[int]) -> dict:
    """Serve through one worker SIGKILL; measure recovery + tails."""
    config = ServerConfig(
        batch_max=BATCH_MAX, max_wait_ms=MAX_WAIT_MS, max_pending=4096,
        num_workers=2, force_pool=True,
        heartbeat_interval_ms=50.0, health_poll_ms=50.0,
    )
    service = PhastService(ch, graph=graph, config=config)
    phases: dict[str, dict] = {}
    recovery: dict[str, float] = {}
    with serve_in_thread(service) as handle:
        pool = service.pool
        with ServerClient(handle.host, handle.port) as probe:
            n = probe.info()["n"]
        _drive(handle, n, depots, 2, min(0.25, seconds), pipeline)  # warm
        phases["before"] = _drive(handle, n, depots, 2, seconds, pipeline)

        victim = pool.supervisor.processes()[0]
        killed_at = time.monotonic()
        os.kill(victim.pid, signal.SIGKILL)

        def watch() -> None:
            # Recovery = full worker complement restored after >= 1
            # restart; polled out-of-band so the load loop stays pure.
            while time.monotonic() - killed_at < 60:
                health = pool.health()
                if (health["workers_alive"] == pool.num_workers
                        and health["restarts"] >= 1):
                    recovery["seconds"] = time.monotonic() - killed_at
                    return
                time.sleep(0.01)

        watcher = threading.Thread(target=watch)
        watcher.start()
        phases["during"] = _drive(handle, n, depots, 2, seconds, pipeline)
        watcher.join()
        phases["after"] = _drive(handle, n, depots, 2, seconds, pipeline)
        health = pool.health()
        with ServerClient(handle.host, handle.port) as probe:
            server_health = probe.health()
    if "seconds" not in recovery:
        raise RuntimeError(f"pool never recovered from the kill: {health}")
    return {
        "workers": 2,
        "recovery_seconds": round(recovery["seconds"], 3),
        "restarts": health["restarts"],
        "deaths": health["deaths"],
        "chunk_retries": health["chunk_retries"],
        "status_after": server_health["status"],
        "phases": phases,
    }


def _router_sweep(ch, graph, *, loads: list[int], seconds: float,
                  pipeline: int, depots: list[int],
                  replica_counts: list[int]) -> dict:
    """Throughput/p99 through the router at 1..k in-thread replicas.

    The same ``_drive`` generator works unchanged — the router speaks
    the replica protocol on its public port.
    """
    out: dict = {"replica_counts": {}}
    config = ServerConfig(
        batch_max=BATCH_MAX, max_wait_ms=MAX_WAIT_MS, max_pending=4096,
    )
    for count in replica_counts:
        handles = [
            serve_in_thread(PhastService(ch, graph=graph, config=config))
            for _ in range(count)
        ]
        router = PhastRouter(RouterConfig(probe_interval_ms=100.0))
        for handle in handles:
            router.add_replica(handle.host, handle.port)
        try:
            with route_in_thread(router) as rh:
                with ServerClient(rh.host, rh.port) as probe:
                    n = probe.info()["n"]
                _drive(rh, n, depots, 2, min(0.25, seconds), pipeline)  # warm
                points = [
                    _drive(rh, n, depots, threads, seconds, pipeline)
                    for threads in loads
                ]
                with ServerClient(rh.host, rh.port) as probe:
                    metrics = probe.metrics()
        finally:
            for handle in handles:
                handle.stop()
        out["replica_counts"][str(count)] = {
            "points": points,
            "affinity": metrics["affinity"],
            "forwarded": metrics["forwarded"],
        }
    return out


def _router_availability(inst, *, seconds: float, depots: list[int]) -> dict:
    """The acceptance run: kill one of two subprocess replicas under
    checked load, then restart and readmit it — availability >= 99%,
    zero wrong answers."""
    engine = PhastEngine(inst.ch)
    reference = {d: engine.tree(d).dist for d in depots}
    workdir = tempfile.mkdtemp(prefix="repro-router-bench-")
    graph_path = os.path.join(workdir, "g.npz")
    ch_path = os.path.join(workdir, "g.ch.npz")
    save_graph(inst.graph, graph_path)
    save_hierarchy(inst.ch, ch_path)

    manager = ReplicaManager()
    router = PhastRouter(RouterConfig(
        probe_interval_ms=50.0, warmup_ms=500.0, down_after=2,
    ))
    phase_stats = {
        name: {"ok": 0, "failed": 0, "wrong": 0, "hist": LatencyHistogram()}
        for name in ("before", "during", "after")
    }
    lock = threading.Lock()
    events: dict[str, float] = {}
    try:
        victim, _survivor = (manager.spawn(graph_path, ch_path)
                             for _ in range(2))
        for managed in manager.replicas.values():
            router.add_replica(managed.host, managed.port)
        with route_in_thread(router) as rh:
            start = time.monotonic()
            kill_at = start + seconds
            restart_at = start + 2 * seconds
            stop_at = start + 3 * seconds

            def phase_of(now: float) -> str:
                if now < kill_at:
                    return "before"
                return "during" if now < restart_at else "after"

            def load(tid: int) -> None:
                rng = np.random.default_rng(2000 + tid)
                n = inst.graph.n
                with ServerClient(rh.host, rh.port) as c:
                    while time.monotonic() < stop_at:
                        depot = depots[int(rng.integers(len(depots)))]
                        targets = rng.integers(
                            n, size=TARGETS_PER_REQUEST
                        ).tolist()
                        t0 = time.perf_counter()
                        try:
                            got = c.one_to_many(depot, targets)
                        except Exception:
                            outcome = "failed"
                        else:
                            want = reference[depot][targets]
                            outcome = ("ok" if np.array_equal(got, want)
                                       else "wrong")
                        dt = time.perf_counter() - t0
                        with lock:
                            stats = phase_stats[phase_of(time.monotonic())]
                            stats[outcome] += 1
                            stats["hist"].observe(dt)

            def chaos() -> None:
                time.sleep(max(0.0, kill_at - time.monotonic()))
                os.kill(manager.replicas[victim].proc.pid, signal.SIGKILL)
                events["killed_s"] = round(time.monotonic() - start, 3)
                time.sleep(max(0.0, restart_at - time.monotonic()))
                manager.stop(victim)  # reap the corpse
                manager.restart(victim)
                rh.readmit(victim)
                events["readmitted_s"] = round(time.monotonic() - start, 3)

            loaders = [threading.Thread(target=load, args=(tid,))
                       for tid in range(2)]
            chaos_thread = threading.Thread(target=chaos)
            for t in loaders + [chaos_thread]:
                t.start()
            for t in loaders + [chaos_thread]:
                t.join()
            with ServerClient(rh.host, rh.port) as probe:
                health = probe.health()
                metrics = probe.metrics()
    finally:
        manager.stop_all()
        shutil.rmtree(workdir, ignore_errors=True)

    totals = {k: sum(s[k] for s in phase_stats.values())
              for k in ("ok", "failed", "wrong")}
    answered = totals["ok"] + totals["failed"] + totals["wrong"]
    phases = {}
    for name, stats in phase_stats.items():
        summary = stats["hist"].summary()
        phases[name] = {
            "ok": stats["ok"],
            "failed": stats["failed"],
            "wrong": stats["wrong"],
            "p50_ms": summary.get("p50_ms", 0.0),
            "p99_ms": summary.get("p99_ms", 0.0),
        }
    return {
        "replicas": 2,
        "requests": answered,
        "availability": round(totals["ok"] / answered, 5) if answered else 0.0,
        "wrong_answers": totals["wrong"],
        "failed_requests": totals["failed"],
        "events": events,
        "phases": phases,
        "victim_state_after": health["replicas"][victim]["state"],
        "victim_generation": health["replicas"][victim]["generation"],
        "failovers": metrics["affinity"]["failovers"],
        "transitions": metrics["transitions"]["counts"],
    }


def run(quiet: bool = False) -> dict:
    loads = _client_loads()
    seconds = _measure_seconds()
    pipeline = _pipeline_depth()
    inst = load_instance()
    graph, ch = inst.graph, inst.ch
    rng = np.random.default_rng(7)
    depots = sorted(
        int(s) for s in rng.choice(
            graph.n, size=min(_depot_count(), graph.n), replace=False
        )
    )

    record: dict = {
        "bench": "server",
        "instance": inst.name,
        "n": int(graph.n),
        "m": int(graph.m),
        "cpus": os.cpu_count(),
        "workload": {
            "shape": "closed-loop, 7/8 one_to_many "
                     f"({TARGETS_PER_REQUEST} targets) + 1/8 query, "
                     "sources uniform over hot depots",
            "depots": len(depots),
            "seconds_per_point": seconds,
            "client_loads": loads,
            "pipeline_per_client": pipeline,
        },
        "modes": {},
        "notes": [],
    }
    for batching in (False, True):
        key = "batching_on" if batching else "batching_off"
        record["modes"][key] = _sweep_mode(
            ch, graph, batching=batching, loads=loads, seconds=seconds,
            pipeline=pipeline, depots=depots,
        )

    record["availability"] = _availability_run(
        ch, graph, seconds=seconds, pipeline=pipeline, depots=depots
    )

    record["router"] = _router_sweep(
        ch, graph, loads=loads, seconds=seconds, pipeline=pipeline,
        depots=depots, replica_counts=_router_replica_counts(),
    )
    record["router_availability"] = _router_availability(
        inst, seconds=seconds, depots=depots
    )

    on = record["modes"]["batching_on"]["points"]
    off = record["modes"]["batching_off"]["points"]
    record["speedup_by_load"] = {
        str(p_on["clients"]): round(
            p_on["throughput_rps"] / p_off["throughput_rps"], 2
        )
        for p_on, p_off in zip(on, off)
    }
    record["speedup_at_top_load"] = record["speedup_by_load"][str(loads[-1])]
    if (os.cpu_count() or 1) <= 1:
        record["notes"].append(
            "single-CPU host: the batching gain is level-loop "
            "amortization (alpha / k) plus same-source lane "
            "coalescing, with no extra cores involved"
        )
    direct_top = on[-1]["throughput_rps"]
    router_counts = record["router"]["replica_counts"]
    if "1" in router_counts:
        routed_top = router_counts["1"]["points"][-1]["throughput_rps"]
        record["router"]["hop_overhead_at_top_load"] = round(
            direct_top / routed_top, 2
        ) if routed_top else None
    if (os.cpu_count() or 1) <= 2:
        record["notes"].append(
            "few-CPU host: router replicas share cores with each other "
            "and the load generator, so the sweep prices the hop and "
            "the affinity behaviour, not replica scaling"
        )

    if not quiet:
        rows = []
        for p_off, p_on in zip(off, on):
            rows.append([
                p_off["clients"],
                fmt(p_off["throughput_rps"], 0),
                fmt(p_on["throughput_rps"], 0),
                f"{p_on['throughput_rps'] / p_off['throughput_rps']:.2f}x",
                fmt(p_on["p50_ms"], 2),
                fmt(p_on["p99_ms"], 2),
            ])
        print_table(
            f"server throughput, batching off vs on "
            f"({seconds:.1f}s per point)",
            ["clients", "off req/s", "on req/s", "speedup",
             "on p50 ms", "on p99 ms"],
            rows,
        )
        print(
            f"mean batch size at load: "
            f"{record['modes']['batching_on']['mean_batch_size']}; "
            f"speedup at {loads[-1]} clients: "
            f"{record['speedup_at_top_load']}x"
        )
        avail = record["availability"]
        print_table(
            "availability through one worker SIGKILL (2 supervised workers)",
            ["phase", "req/s", "p50 ms", "p99 ms"],
            [
                [name,
                 fmt(avail["phases"][name]["throughput_rps"], 0),
                 fmt(avail["phases"][name]["p50_ms"], 2),
                 fmt(avail["phases"][name]["p99_ms"], 2)]
                for name in ("before", "during", "after")
            ],
        )
        print(
            f"recovery in {avail['recovery_seconds']}s "
            f"({avail['restarts']} restart(s), "
            f"{avail['chunk_retries']} chunk retr{'y' if avail['chunk_retries'] == 1 else 'ies'}); "
            f"status after: {avail['status_after']}"
        )
        rows = []
        for count, mode in sorted(record["router"]["replica_counts"].items(),
                                  key=lambda kv: int(kv[0])):
            top = mode["points"][-1]
            hit_rate = mode["affinity"]["hit_rate"]
            rows.append([
                count,
                fmt(top["throughput_rps"], 0),
                fmt(top["p50_ms"], 2),
                fmt(top["p99_ms"], 2),
                "-" if hit_rate is None else f"{hit_rate:.3f}",
                mode["affinity"]["spills"],
            ])
        print_table(
            f"router sweep at {loads[-1]} clients (in-thread replicas)",
            ["replicas", "req/s", "p50 ms", "p99 ms", "affinity hit", "spills"],
            rows,
        )
        if record["router"].get("hop_overhead_at_top_load"):
            print(
                "router hop overhead at top load: "
                f"{record['router']['hop_overhead_at_top_load']}x "
                "(direct rps / routed rps, 1 replica)"
            )
        ravail = record["router_availability"]
        print_table(
            "router availability through one replica SIGKILL "
            "(2 spawned replicas, every answer checked)",
            ["phase", "ok", "failed", "wrong", "p50 ms", "p99 ms"],
            [
                [name,
                 ravail["phases"][name]["ok"],
                 ravail["phases"][name]["failed"],
                 ravail["phases"][name]["wrong"],
                 fmt(ravail["phases"][name]["p50_ms"], 2),
                 fmt(ravail["phases"][name]["p99_ms"], 2)]
                for name in ("before", "during", "after")
            ],
        )
        print(
            f"availability: {ravail['availability'] * 100:.2f}% over "
            f"{ravail['requests']} checked requests, "
            f"{ravail['wrong_answers']} wrong, "
            f"{ravail['failovers']} failover(s); victim "
            f"{ravail['victim_state_after']} at generation "
            f"{ravail['victim_generation']} after readmission"
        )
        for note in record["notes"]:
            print(f"note: {note}")
    with open(OUTPUT, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    if not quiet:
        print(f"wrote {OUTPUT}")
    return record


if __name__ == "__main__":
    run()
