"""Batch tree throughput — serial vs per-call pool vs persistent pool.

The tree-heavy applications (Sections V and VII) issue batches of
shortest path trees against one read-only hierarchy.  This bench
documents what :class:`repro.core.pool.PhastPool` buys over the two
older ways of running a batch:

* ``serial`` — one warm :class:`~repro.core.phast.PhastEngine`, one
  tree at a time (also produces the reference distances every other
  mode must match bit-for-bit);
* ``per-call pool`` — the seed ``trees_per_core`` driver, reproduced
  verbatim below: every call forks a fresh ``multiprocessing.Pool``,
  every worker rebuilds its engine (a full sweep-structure sort), and
  every distance row is pickled back through a pipe;
* ``persistent pool`` — a resident :class:`PhastPool`: hierarchy
  published once over shared memory, warm engines across batches,
  k-source sweep lanes, results written in place into a shared output
  matrix.

Timings are medians over ``REPRO_BENCH_BATCH_REPEATS`` batches of
``REPRO_BENCH_BATCH_SOURCES`` sources (defaults 3 × 256).  The pool
modes always run with ``force_pool=True`` so the multiprocessing path
is measured even on a single-CPU host; the CPU count is recorded so a
single-core run is never mistaken for a parallel measurement (there
the speedup comes purely from amortizing fork + engine builds +
pickling, not from extra cores).

Results go to ``BENCH_batch_queries.json`` next to the other bench
trajectories.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from common import fmt, load_instance, print_table, random_sources
from repro.core.phast import PhastEngine
from repro.core.pool import PhastPool

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batch_queries.json"

DEFAULT_SOURCES = 256
DEFAULT_REPEATS = 3
DEFAULT_SWEEP_K = 8


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name, "").strip()
    return int(value) if value else default


# -- the seed per-call driver, kept verbatim as the baseline ------------------
#
# This is the pre-PhastPool ``trees_per_core``: fork a Pool per call,
# rebuild each worker's engine from the copy-on-write hierarchy, pickle
# every row back.  The shim in ``repro.core.parallel`` no longer works
# this way, so the old costs are preserved here for the comparison.

_LEGACY_CH = None
_LEGACY_ENGINE = None
_LEGACY_K = 1


def _legacy_worker_run(sources):
    global _LEGACY_ENGINE
    if _LEGACY_ENGINE is None:
        _LEGACY_ENGINE = PhastEngine(_LEGACY_CH)
    eng = _LEGACY_ENGINE
    results = []
    k = _LEGACY_K
    for i in range(0, len(sources), k):
        chunk = sources[i : i + k]
        if len(chunk) == 1:
            dists = eng.tree(chunk[0]).dist[None, :]
        else:
            dists = eng.trees(chunk)
        for _s, row in zip(chunk, dists):
            results.append(row.copy())
    return results


def legacy_trees_per_call(ch, sources, *, num_workers, sources_per_sweep=1):
    global _LEGACY_CH, _LEGACY_ENGINE, _LEGACY_K
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    num_workers = min(num_workers, len(sources))
    chunks = [sources[i::num_workers] for i in range(num_workers)]
    _LEGACY_CH, _LEGACY_ENGINE, _LEGACY_K = ch, None, sources_per_sweep
    with ctx.Pool(processes=len(chunks)) as pool:
        parts = pool.map(_legacy_worker_run, chunks)
    out = [None] * len(sources)
    for w, chunk in enumerate(chunks):
        for j, _s in enumerate(chunk):
            out[w + j * len(chunks)] = parts[w][j]
    return out


# -- measurement --------------------------------------------------------------


def _median_ms(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(times))


def run(quiet: bool = False) -> dict:
    batch = _env_int("REPRO_BENCH_BATCH_SOURCES", DEFAULT_SOURCES)
    repeats = _env_int("REPRO_BENCH_BATCH_REPEATS", DEFAULT_REPEATS)
    k = _env_int("REPRO_BENCH_BATCH_K", DEFAULT_SWEEP_K)
    inst = load_instance()
    graph, ch = inst.graph, inst.ch
    sources = random_sources(graph.n, min(batch, graph.n), seed=7)
    workers = _env_int("REPRO_BENCH_BATCH_WORKERS", 0) or None

    record: dict = {
        "bench": "batch_queries",
        "instance": inst.name,
        "n": int(graph.n),
        "m": int(graph.m),
        "batch_sources": len(sources),
        "repeats": repeats,
        "sources_per_sweep": k,
        "cpus": os.cpu_count(),
        "entries": [],
        "notes": [],
    }

    # Serial reference (and the distances every pool mode must match).
    engine = inst.engine()
    reference = np.stack([engine.tree(s).dist for s in sources])
    serial_ms = _median_ms(
        lambda: [engine.tree(s) for s in sources], repeats
    )

    # Seed per-call driver: pays fork + engine rebuild + row pickling
    # on every call (k=1, its default and how the apps drove it).
    from repro.core.parallel import resolve_workers

    pool_workers = workers or resolve_workers(None)[0]
    legacy_trees_per_call(ch, sources[:2], num_workers=pool_workers)  # warm
    legacy_rows = legacy_trees_per_call(
        ch, sources, num_workers=pool_workers
    )
    legacy_identical = bool(
        np.array_equal(np.stack(legacy_rows), reference)
    )
    percall_ms = _median_ms(
        lambda: legacy_trees_per_call(ch, sources, num_workers=pool_workers),
        repeats,
    )

    # Persistent pool: resident workers, shared segments, k lanes.
    with PhastPool(
        ch,
        num_workers=pool_workers,
        sources_per_sweep=k,
        force_pool=True,
    ) as pool:
        mat = pool.trees(sources)
        pool_identical = bool(np.array_equal(mat, reference))
        persistent_ms = _median_ms(lambda: pool.trees(sources), repeats)
    t0 = time.perf_counter()
    with PhastPool(
        ch, num_workers=pool_workers, sources_per_sweep=k, force_pool=True
    ) as pool:
        pool.trees(sources[:1])
        setup_ms = (time.perf_counter() - t0) * 1e3

    def entry(mode, ms, identical=None, **extra):
        e = {
            "mode": mode,
            "ms_per_batch": round(ms, 2),
            "trees_per_sec": round(len(sources) / (ms / 1e3), 1),
            **extra,
        }
        if identical is not None:
            e["distances_identical_to_serial"] = identical
        record["entries"].append(e)
        return e

    e_serial = entry("serial", serial_ms, workers=1, sweep_k=1)
    e_percall = entry(
        "percall_pool", percall_ms, legacy_identical,
        workers=pool_workers, sweep_k=1,
    )
    e_persist = entry(
        "persistent_pool", persistent_ms, pool_identical,
        workers=pool_workers, sweep_k=k,
        startup_ms_amortized_away=round(setup_ms, 2),
    )
    record["speedup_persistent_vs_percall"] = round(
        percall_ms / persistent_ms, 2
    )
    record["speedup_persistent_vs_serial"] = round(
        serial_ms / persistent_ms, 2
    )
    if (os.cpu_count() or 1) <= 1:
        record["notes"].append(
            "single-CPU host: force_pool exercises the multiprocessing "
            "path, so the persistent-pool gain is overhead amortization "
            "(fork + engine builds + per-row pickling), not parallelism"
        )

    if not quiet:
        print_table(
            f"batch tree throughput ({len(sources)} sources, "
            f"median of {repeats})",
            ["mode", "workers", "k", "ms/batch", "trees/s", "identical"],
            [
                [
                    e["mode"],
                    e["workers"],
                    e["sweep_k"],
                    fmt(e["ms_per_batch"], 1),
                    fmt(e["trees_per_sec"], 0),
                    str(e.get("distances_identical_to_serial", "ref")),
                ]
                for e in (e_serial, e_percall, e_persist)
            ],
        )
        print(
            f"persistent vs per-call: "
            f"{record['speedup_persistent_vs_percall']}x; "
            f"persistent vs serial: "
            f"{record['speedup_persistent_vs_serial']}x"
        )
        for note in record["notes"]:
            print(f"note: {note}")
    with open(OUTPUT, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    if not quiet:
        print(f"wrote {OUTPUT}")
    return record


if __name__ == "__main__":
    run()
