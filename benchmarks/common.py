"""Shared infrastructure for the benchmark harness.

Every table and figure of the paper has a module here that rebuilds it.
Two kinds of numbers appear:

* **measured** — wall-clock milliseconds of this reproduction's Python
  implementations on a scaled-down synthetic network (absolute values
  are incomparable to the paper's C++; *ratios and orderings* are the
  reproduction target);
* **modeled** — the hardware cost model's predictions at the paper's
  full Europe/USA scale, directly comparable to the paper's absolute
  numbers.

Expensive artifacts (graphs + hierarchies) are pickled under
``benchmarks/.cache`` so repeated runs skip CH preprocessing.  Set
``REPRO_BENCH_SCALE`` to change the instance size (default 64 ⇒ 4096
vertices).
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.ch import contract_graph
from repro.core import PhastEngine
from repro.graph import StaticGraph, dfs_order, europe_like, usa_like
from repro.simulator import WorkloadCounts

CACHE_DIR = Path(__file__).resolve().parent / ".cache"

#: Paper-scale workload counts used by the modeled columns.
EUROPE_COUNTS = WorkloadCounts(n=18_000_000, arcs=33_800_000, levels=140)
EUROPE_DIJKSTRA_COUNTS = WorkloadCounts(n=18_000_000, arcs=42_000_000)
USA_COUNTS = WorkloadCounts(n=24_000_000, arcs=50_600_000, levels=101)
USA_DIJKSTRA_COUNTS = WorkloadCounts(n=24_000_000, arcs=58_300_000)
EUROPE_DIST_COUNTS = WorkloadCounts(n=18_000_000, arcs=38_800_000, levels=410)
USA_DIST_COUNTS = WorkloadCounts(n=24_000_000, arcs=53_700_000, levels=285)


def bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "64"))


@dataclass
class Instance:
    """A benchmark-ready graph with its hierarchy and engines."""

    name: str
    graph: StaticGraph
    ch: object
    build_seconds: float
    engines: dict = field(default_factory=dict)

    def engine(self, *, reorder: bool = True, explicit_init: bool = False):
        key = (reorder, explicit_init)
        if key not in self.engines:
            self.engines[key] = PhastEngine(
                self.ch, reorder=reorder, explicit_init=explicit_init
            )
        return self.engines[key]


def _apply_layout(g: StaticGraph, layout: str) -> StaticGraph:
    if layout == "input":
        return g
    if layout == "dfs":
        return g.permute(dfs_order(g))
    if layout == "random":
        from repro.graph import random_order

        return g.permute(random_order(g.n, seed=0))
    raise ValueError(f"unknown layout {layout!r}")


def _build(kind: str, scale: int, metric: str, layout: str) -> Instance:
    if kind == "europe":
        g = europe_like(scale=scale, metric=metric)
    elif kind == "usa":
        g = usa_like(scale=scale, metric=metric)
    else:
        raise ValueError(kind)
    g = _apply_layout(g, layout)
    start = time.perf_counter()
    ch = contract_graph(g)
    build = time.perf_counter() - start
    return Instance(
        name=f"{kind}-{metric}-{scale}-{layout}", graph=g, ch=ch, build_seconds=build
    )


def load_instance(
    kind: str = "europe",
    metric: str = "time",
    scale: int | None = None,
    layout: str = "dfs",
) -> Instance:
    """Fetch (or build and cache) a benchmark instance.

    ``layout`` is one of the paper's three vertex orders: ``"random"``,
    ``"input"`` (as generated) or ``"dfs"`` (the default the paper uses
    for all measurements beyond Table I).
    """
    scale = scale or bench_scale()
    CACHE_DIR.mkdir(exist_ok=True)
    name = f"{kind}-{metric}-{scale}-{layout}"
    path = CACHE_DIR / f"{name}.pickle"
    if path.exists():
        with open(path, "rb") as f:
            graph, ch, build = pickle.load(f)
        return Instance(name=name, graph=graph, ch=ch, build_seconds=build)
    inst = _build(kind, scale, metric, layout)
    with open(path, "wb") as f:
        pickle.dump((inst.graph, inst.ch, inst.build_seconds), f)
    return inst


def time_ms(fn, repeats: int = 5, warmup: int = 1) -> float:
    """Median wall-clock milliseconds of ``fn()``."""
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e3)
    return float(np.median(times))


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Fixed-width table printer used by every bench target."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in cells:
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))


def fmt(x: float, digits: int = 2) -> str:
    """Compact numeric formatting for table cells."""
    if x != x:  # NaN
        return "-"
    if x >= 1000:
        return f"{x:,.0f}"
    return f"{x:.{digits}f}"


def random_sources(n: int, k: int, seed: int = 0) -> list[int]:
    rng = np.random.default_rng(seed)
    return [int(s) for s in rng.integers(0, n, k)]
