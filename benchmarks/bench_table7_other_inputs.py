"""Table VII — other inputs: Europe/USA × travel times/distances.

Paper: every algorithm slows on USA (bigger) and on travel distances
(weaker hierarchy: Europe/time 140 levels vs Europe/distance 410; USA
101 vs 285; more shortcuts).  Reproduced with measured wall-clock on
four synthetic instances plus the cost model at paper scale.
"""

from __future__ import annotations

from common import (
    EUROPE_COUNTS,
    EUROPE_DIJKSTRA_COUNTS,
    EUROPE_DIST_COUNTS,
    USA_COUNTS,
    USA_DIJKSTRA_COUNTS,
    USA_DIST_COUNTS,
    fmt,
    load_instance,
    print_table,
    time_ms,
)
from repro.simulator import CostModel, machine
from repro.sssp import dijkstra

INPUTS = [
    ("europe", "time"),
    ("europe", "distance"),
    ("usa", "time"),
    ("usa", "distance"),
]

#: Paper-scale counts per (kind, metric).
COUNTS = {
    ("europe", "time"): (EUROPE_COUNTS, EUROPE_DIJKSTRA_COUNTS),
    ("europe", "distance"): (EUROPE_DIST_COUNTS, EUROPE_DIJKSTRA_COUNTS),
    ("usa", "time"): (USA_COUNTS, USA_DIJKSTRA_COUNTS),
    ("usa", "distance"): (USA_DIST_COUNTS, USA_DIJKSTRA_COUNTS),
}


def run(quiet: bool = False, scale: int | None = None):
    scale = scale or 48  # four instances: keep CH builds modest
    rows = []
    stats_rows = []
    for kind, metric in INPUTS:
        inst = load_instance(kind, metric, scale=scale)
        g = inst.graph
        eng = inst.engine()
        dij = time_ms(lambda: dijkstra(g, 0, with_parents=False), 3)
        ph = time_ms(lambda: eng.tree(0), 5)
        rows.append(
            [f"{kind}/{metric}", g.n, fmt(dij, 1), fmt(ph, 2), fmt(dij / ph, 1)]
        )
        stats_rows.append(
            [
                f"{kind}/{metric}",
                inst.ch.num_levels,
                inst.ch.num_shortcuts,
                fmt(inst.build_seconds, 1),
            ]
        )
    if not quiet:
        print_table(
            f"Table VII measured (scale={scale})",
            ["input", "n", "Dijkstra ms", "PHAST ms", "speedup"],
            rows,
        )
        print_table(
            "Table VII hierarchy statistics (paper: EU 140/410 levels, "
            "USA 101/285 for time/distance)",
            ["input", "levels", "shortcuts", "CH build s"],
            stats_rows,
        )

    cm = CostModel(machine("M1-4"))
    mrows = []
    for kind, metric in INPUTS:
        phast_c, dij_c = COUNTS[(kind, metric)]
        mrows.append(
            [
                f"{kind}/{metric}",
                fmt(cm.dijkstra_single(dij_c), 0),
                fmt(cm.phast_single(phast_c), 0),
            ]
        )
    if not quiet:
        print_table(
            "Table VII modeled at paper scale (M1-4, ms/tree)",
            ["input", "Dijkstra", "PHAST"],
            mrows,
        )
    return rows, stats_rows


# -- pytest shape checks -----------------------------------------------------


def test_distance_metric_weakens_hierarchy():
    eu_t = load_instance("europe", "time", scale=32)
    eu_d = load_instance("europe", "distance", scale=32)
    assert eu_d.ch.num_levels >= eu_t.ch.num_levels
    assert eu_d.ch.num_shortcuts >= eu_t.ch.num_shortcuts


def test_usa_is_bigger_and_slower():
    eu = load_instance("europe", "time", scale=32)
    us = load_instance("usa", "time", scale=32)
    assert us.graph.n > eu.graph.n
    t_eu = time_ms(lambda: eu.engine().tree(0), 5)
    t_us = time_ms(lambda: us.engine().tree(0), 5)
    assert t_us > t_eu * 0.6  # bigger input is not faster (noise margin)


def test_phast_wins_on_every_input():
    for kind, metric in INPUTS:
        inst = load_instance(kind, metric, scale=32)
        dij = time_ms(lambda: dijkstra(inst.graph, 0, with_parents=False), 3)
        ph = time_ms(lambda: inst.engine().tree(0), 5)
        assert ph < dij, (kind, metric)


def test_modeled_usa_slower_than_europe():
    cm = CostModel(machine("M1-4"))
    assert cm.phast_single(USA_COUNTS) > cm.phast_single(EUROPE_COUNTS)
    assert cm.dijkstra_single(USA_DIJKSTRA_COUNTS) > cm.dijkstra_single(
        EUROPE_DIJKSTRA_COUNTS
    )


if __name__ == "__main__":
    run()
