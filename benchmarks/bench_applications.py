"""Section VII applications: diameter, arc flags, reach, betweenness.

The paper's claims: arc-flag preprocessing drops from ~10.5 h (Dijkstra,
4 cores) to < 3 min with GPHAST; exact reach and betweenness become
tractable.  Reproduced by timing each application with the Dijkstra
backend vs the PHAST backend on the benchmark instance.
"""

from __future__ import annotations

import numpy as np

from common import fmt, load_instance, print_table, time_ms
from repro.apps import (
    betweenness,
    compute_arc_flags,
    diameter,
    exact_reaches,
    partition_graph,
)
from repro.ch import contract_graph


def run(quiet: bool = False):
    inst = load_instance(scale=32)  # apps grow n trees; keep n modest
    g, ch = inst.graph, inst.ch
    sample = np.arange(0, g.n, 4)

    rows = []

    t_dij = time_ms(lambda: diameter(g, sources=sample, method="dijkstra"), 1)
    t_ph = time_ms(lambda: diameter(g, ch, sources=sample, method="phast"), 1)
    rows.append(["diameter", fmt(t_dij, 0), fmt(t_ph, 0), fmt(t_dij / t_ph, 1)])

    part = partition_graph(g, 8)
    rev_ch = contract_graph(g.reverse())
    t_dij = time_ms(lambda: compute_arc_flags(g, part, method="dijkstra"), 1)
    t_ph = time_ms(
        lambda: compute_arc_flags(g, part, method="phast", reverse_ch=rev_ch), 1
    )
    rows.append(["arc flags", fmt(t_dij, 0), fmt(t_ph, 0), fmt(t_dij / t_ph, 1)])

    t_dij = time_ms(lambda: exact_reaches(g, sources=sample, method="dijkstra"), 1)
    t_ph = time_ms(lambda: exact_reaches(g, ch, sources=sample, method="phast"), 1)
    rows.append(["exact reach", fmt(t_dij, 0), fmt(t_ph, 0), fmt(t_dij / t_ph, 1)])

    t_dij = time_ms(lambda: betweenness(g, sources=sample, method="dijkstra"), 1)
    t_ph = time_ms(lambda: betweenness(g, ch, sources=sample, method="phast"), 1)
    rows.append(["betweenness", fmt(t_dij, 0), fmt(t_ph, 0), fmt(t_dij / t_ph, 1)])

    if not quiet:
        print_table(
            f"Section VII applications (n={g.n}, {sample.size} trees sampled)",
            ["application", "Dijkstra ms", "PHAST ms", "speedup"],
            rows,
        )
        print(
            "paper anchor: arc flags 10.5 h -> < 3 min (210x, with GPHAST "
            "at full scale); here the backend swap shows the same direction"
        )
        _arc_flag_projection()
    return rows


def _arc_flag_projection() -> None:
    """Model arc-flag preprocessing at paper scale (Section VII-B-b)."""
    import numpy as np

    from bench_table3_gphast import paper_scale_level_profile
    from common import EUROPE_DIJKSTRA_COUNTS
    from repro.simulator import GTX_580, CostModel, GpuCostModel, machine

    boundary_trees = 11_000  # "about 11,000 shortest path trees"
    cm = CostModel(machine("M1-4"))
    dij_tree_s = cm.dijkstra_per_tree_parallel(
        EUROPE_DIJKSTRA_COUNTS, 4, pinned=True
    ) / 1e3
    lv, la = paper_scale_level_profile()
    gpu = GpuCostModel(GTX_580).sweep_cost(lv, la, 16, n=18_000_000, m=33_800_000)
    # Tree reconstruction: one more streamed pass over arcs + labels.
    recon_ms = (33_800_000 * 12 + 18_000_000 * 4) / (192.4e9) * 1e3
    gphast_tree_s = (gpu.per_tree_ms + recon_ms) / 1e3
    rows = [
        [
            "Dijkstra trees (4 cores)",
            fmt(boundary_trees * dij_tree_s / 3600, 1),
            "10.5 h (incl. flag setting)",
        ],
        [
            "GPHAST + tree reconstruction",
            fmt(boundary_trees * gphast_tree_s / 60, 1),
            "< 3 min",
        ],
    ]
    print_table(
        "arc-flag preprocessing modeled at paper scale "
        f"({boundary_trees} boundary trees)",
        ["backend", "modeled", "paper"],
        rows,
    )
    print("(units: hours for the Dijkstra row, minutes for the GPHAST row)")


# -- pytest shape checks -----------------------------------------------------


def test_phast_backend_wins_overall():
    rows = run(quiet=True)
    wins = 0
    for name, dij, ph, _speed in rows:
        dij_ms = float(dij.replace(",", ""))
        ph_ms = float(ph.replace(",", ""))
        # No app may get meaningfully slower; most must get faster.
        assert ph_ms < dij_ms * 1.15, name
        wins += ph_ms < dij_ms
    assert wins >= 3


def test_bench_diameter_sampled(benchmark, europe):
    sample = np.arange(0, europe.graph.n, 64)
    benchmark(
        lambda: diameter(europe.graph, europe.ch, sources=sample, method="phast")
    )


def test_bench_betweenness_sampled(benchmark, europe):
    sample = np.arange(0, europe.graph.n, 256)
    benchmark(
        lambda: betweenness(europe.graph, europe.ch, sources=sample, method="phast")
    )


if __name__ == "__main__":
    run()
