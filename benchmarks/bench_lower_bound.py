"""Section VIII-B — the memory-bandwidth lower bound.

The paper bounds PHAST from below with a pass that streams ``first``,
the arc list and the distance array and writes every distance: 65.6 ms
on M1-4, with PHAST 2.6x above it; a branchy traversal that only sums
arc lengths lands at 153 ms, 19 ms under PHAST — evidence that further
reordering cannot help much.

Reproduced at benchmark scale with NumPy equivalents of all three
passes, and at paper scale via the cost model.
"""

from __future__ import annotations

import numpy as np

from common import (
    EUROPE_COUNTS,
    fmt,
    load_instance,
    print_table,
    time_ms,
)
from repro.simulator import CostModel, machine


def streaming_pass(sweep, dist):
    """The lower-bound kernel: touch all arrays sequentially."""
    s = 0
    s += int(sweep.arc_first[-1])
    # NumPy sums stream the arrays at memory bandwidth.
    s += int(sweep.arc_tail_pos.sum())
    s += int(sweep.arc_len.sum())
    s += int(dist.sum())
    dist[:] = 0
    return s


def traversal_pass(sweep, dist):
    """The paper's 'traverse like PHAST but only sum lengths' probe:
    per-level segment sums instead of shortest-path minima."""
    for i in range(sweep.num_levels):
        lo, hi = sweep.level_slice(i)
        alo, ahi = sweep.level_arc_slice(i)
        if ahi > alo:
            seg = np.add.reduceat(
                sweep.arc_len[alo:ahi],
                (sweep.arc_first[lo:hi] - alo).clip(0, ahi - alo - 1),
            )
            dist[lo : lo + seg.size] = seg
    return dist


def run(quiet: bool = False):
    inst = load_instance()
    eng = inst.engine()
    sw = eng.sweep
    dist = np.zeros(sw.n, dtype=np.int64)

    t_lb = time_ms(lambda: streaming_pass(sw, dist), 10)
    t_trav = time_ms(lambda: traversal_pass(sw, dist), 10)
    t_phast = time_ms(lambda: eng.tree(0), 10)

    rows = [
        ["lower bound (stream all arrays)", fmt(t_lb, 3), "65.6"],
        ["graph traversal, sum only", fmt(t_trav, 3), "153"],
        ["PHAST", fmt(t_phast, 3), "172"],
        ["PHAST / lower bound", fmt(t_phast / t_lb, 2), "2.6"],
    ]
    if not quiet:
        print_table(
            f"Section VIII-B lower bound, measured (n={sw.n})",
            ["pass", "ms", "paper ms"],
            rows,
        )
        print(
            "note: at this scale NumPy streams from cache, so the measured "
            "PHAST/LB ratio is inflated by per-level Python overhead; the "
            "modeled table below is the paper-scale comparison"
        )

    cm = CostModel(machine("M1-4"))
    mrows = [
        ["lower bound", fmt(cm.phast_lower_bound(EUROPE_COUNTS), 1), "65.6"],
        ["PHAST", fmt(cm.phast_single(EUROPE_COUNTS), 0), "172"],
        [
            "ratio",
            fmt(cm.phast_single(EUROPE_COUNTS) / cm.phast_lower_bound(EUROPE_COUNTS), 2),
            "2.6",
        ],
        [
            "lower bound, 4 cores, k=16",
            fmt(cm.phast_lower_bound(EUROPE_COUNTS, 4, 16), 1),
            "12.8",
        ],
    ]
    if not quiet:
        print_table(
            "Section VIII-B modeled at paper scale (M1-4)",
            ["pass", "ms", "paper ms"],
            mrows,
        )
    return t_lb, t_trav, t_phast


# -- pytest shape checks -----------------------------------------------------


def test_lower_bound_orders(europe):
    eng = europe.engine()
    sw = eng.sweep
    dist = np.zeros(sw.n, dtype=np.int64)
    t_lb = time_ms(lambda: streaming_pass(sw, dist), 10)
    t_phast = time_ms(lambda: eng.tree(0), 10)
    # PHAST sits above the streaming floor.  (At this scale the factor
    # is dominated by per-level Python overhead, so only the ordering
    # is asserted; the paper's 2.6x is checked on the cost model.)
    assert t_lb < t_phast


def test_modeled_ratio_matches_paper():
    cm = CostModel(machine("M1-4"))
    ratio = cm.phast_single(EUROPE_COUNTS) / cm.phast_lower_bound(EUROPE_COUNTS)
    assert 2.0 < ratio < 3.2  # paper: 2.6


def test_bench_streaming_pass(benchmark, europe):
    sw = europe.engine().sweep
    dist = np.zeros(sw.n, dtype=np.int64)
    benchmark(lambda: streaming_pass(sw, dist))


if __name__ == "__main__":
    run()
