"""Master report: regenerate every table and figure of the paper.

Usage::

    python benchmarks/report.py            # all experiments
    python benchmarks/report.py table1 fig1  # a subset

The first run builds and caches the benchmark instances (a few minutes
of CH preprocessing); later runs are fast.
"""

from __future__ import annotations

import sys
import time

from repro.utils import LatencyHistogram

import bench_ablations
import bench_applications
import bench_batch_queries
import bench_ch_query
import bench_customize
import bench_fig1_levels
import bench_highway_dimension
import bench_lower_bound
import bench_preprocessing
import bench_rphast
import bench_server
import bench_table1_single_tree
import bench_table2_multi_tree
import bench_table3_gphast
import bench_table4_machines
import bench_table5_architectures
import bench_table6_apsp
import bench_table7_other_inputs

EXPERIMENTS = {
    "fig1": bench_fig1_levels.run,
    "table1": bench_table1_single_tree.run,
    "table2": bench_table2_multi_tree.run,
    "table3": bench_table3_gphast.run,
    "table4": bench_table4_machines.run,
    "table5": bench_table5_architectures.run,
    "table6": bench_table6_apsp.run,
    "table7": bench_table7_other_inputs.run,
    "lower_bound": bench_lower_bound.run,
    "ch_query": bench_ch_query.run,
    "applications": bench_applications.run,
    "ablations": bench_ablations.run,
    "rphast": bench_rphast.run,
    "matrix": bench_rphast.run_matrix,
    "batch_queries": bench_batch_queries.run,
    "highway_dimension": bench_highway_dimension.run,
    "preprocessing": bench_preprocessing.run,
    "server": bench_server.run,
    "customize": bench_customize.run,
}


def main(argv: list[str]) -> None:
    names = argv or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiments {unknown}; known: {list(EXPERIMENTS)}")
    durations = LatencyHistogram()
    for name in names:
        start = time.perf_counter()
        print(f"\n{'#' * 70}\n# {name}\n{'#' * 70}")
        EXPERIMENTS[name]()
        elapsed = time.perf_counter() - start
        durations.observe(elapsed)
        print(f"[{name} done in {elapsed:.1f}s]")
    if durations.summary().get("count", 0) > 1:
        s = durations.summary()
        print(
            f"\n{len(names)} experiments; per-experiment wall time "
            f"p50 {s['p50_ms'] / 1e3:.1f}s / max {s['max_ms'] / 1e3:.1f}s"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
