"""Metric customization vs full re-contraction, and hot swap under load.

Two claims are measured:

* **Customization speed** — on a ~10^5-vertex instance, recomputing
  every shortcut weight for a new metric (:func:`repro.ch.customize`)
  must beat re-running the witness contraction from scratch by >= 10x,
  while producing bit-identical distances.  Both ratios that matter
  operationally are recorded: against the witness re-contraction (what
  the repo's default preprocessing would redo on a weight change) and
  against rebuilding the customizable pipeline itself (topology +
  customize — what a from-scratch deploy of the swappable stack
  costs).
* **Swap availability** — a server under closed-loop load takes a
  ``swap_metric`` mid-burst.  Every request must be answered, every
  answer must match exactly one metric generation (old or new, never a
  mixture), and p50/p99 are recorded before / during / after the swap.

The topology build is the expensive one-time step (it dwarfs witness
contraction — that is the point of the split: you pay it once per
*structure*, not per metric), so the built artifact is cached under
``benchmarks/.cache`` keyed by instance; re-runs skip straight to the
timed phases.

Environment knobs: ``REPRO_BENCH_CUSTOMIZE_SCALE`` (default 316 ⇒
n = 99 856: the 10^5-vertex acceptance instance),
``REPRO_BENCH_SWAP_SCALE`` (default 64) for the serving experiment,
``REPRO_BENCH_CUSTOMIZE_REPS`` (default 3) timed repetitions.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from common import fmt, print_table
from repro.ch import CHParams, build_topology, contract_graph_batched, customize
from repro.core import PhastEngine
from repro.graph import europe_like, load_topology, save_topology
from repro.server import (
    PhastService,
    ServerClient,
    ServerConfig,
    serve_in_thread,
)
from repro.utils.timing import LatencyHistogram

CACHE_DIR = Path(__file__).resolve().parent / ".cache"
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_customize.json"


def _scale() -> int:
    return int(os.environ.get("REPRO_BENCH_CUSTOMIZE_SCALE", "316"))


def _swap_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SWAP_SCALE", "64"))


def _reps() -> int:
    return int(os.environ.get("REPRO_BENCH_CUSTOMIZE_REPS", "3"))


def _cached_topology(graph, scale: int, seed: int):
    """Build (or load) the topology; returns (topology, build_seconds).

    ``build_seconds`` is measured once on the build that populates the
    cache and persisted in the artifact's stats, so cached re-runs
    still report the true one-time cost.
    """
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"topology-europe-{scale}-{seed}.npz"
    if path.exists():
        topo = load_topology(path)
        return topo, float(topo.stats.get("seconds", 0.0))
    start = time.perf_counter()
    topo = build_topology(graph)
    build_s = time.perf_counter() - start
    save_topology(topo, path)
    return topo, build_s


def bench_customize(quiet: bool = False) -> dict:
    """Customization vs re-contraction on the acceptance instance."""
    scale, seed = _scale(), 4
    graph = europe_like(scale, seed=seed)
    topo, build_s = _cached_topology(graph, scale, seed)
    base_w = np.asarray(graph.arc_len, dtype=np.int64)

    timings: dict[str, float] = {}
    native_used = None
    for label, kwargs, env in [
        ("customize_novia_s", {"with_vias": False}, None),
        ("customize_vias_s", {"with_vias": True}, None),
        ("customize_novia_numpy_s", {"with_vias": False}, "1"),
    ]:
        if env is not None:
            os.environ["REPRO_NO_NATIVE"] = env
            from repro.utils import native

            native._lib = None  # force the fallback path
        best = None
        for _ in range(_reps()):
            start = time.perf_counter()
            metric = customize(topo, base_w, **kwargs)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        timings[label] = best
        if env is None and native_used is None:
            native_used = bool(metric.stats.get("native"))
        if env is not None:
            os.environ.pop("REPRO_NO_NATIVE", None)
            native._lib = None

    start = time.perf_counter()
    witness_ch = contract_graph_batched(graph, CHParams())
    contraction_s = time.perf_counter() - start

    # Bit-identity: the customized hierarchy's distances == the witness
    # hierarchy's, source by source, exactly.
    metric = customize(topo, base_w, with_vias=False)
    custom_engine = PhastEngine(topo.instantiate(metric))
    witness_engine = PhastEngine(witness_ch)
    rng = np.random.default_rng(17)
    sample = rng.choice(graph.n, size=8, replace=False)
    bit_identical = all(
        np.array_equal(custom_engine.tree(int(s)).dist,
                       witness_engine.tree(int(s)).dist)
        for s in sample
    )

    record = {
        "instance": f"europe-{scale}",
        "n": graph.n,
        "m": graph.m,
        "closure_arcs": topo.num_arcs,
        "triangles": topo.num_triangles,
        "levels": int(topo.tri_level_first.size - 1),
        "build_topology_s": round(build_s, 3),
        "native_kernel": native_used,
        **{k: round(v, 4) for k, v in timings.items()},
        "recontraction_s": round(contraction_s, 3),
        "speedup_vs_recontraction": round(
            contraction_s / timings["customize_novia_s"], 2),
        "speedup_vs_recontraction_with_vias": round(
            contraction_s / timings["customize_vias_s"], 2),
        "speedup_vs_pipeline_rebuild": round(
            (build_s + timings["customize_novia_s"])
            / timings["customize_novia_s"], 2),
        "native_kernel_speedup": round(
            timings["customize_novia_numpy_s"]
            / timings["customize_novia_s"], 2),
        "bit_identical_distances": bool(bit_identical),
        "checked_sources": int(sample.size),
    }
    if not quiet:
        print_table(
            f"customization vs re-contraction (n={graph.n})",
            ["step", "seconds"],
            [
                ["build_topology (once per structure)", fmt(build_s, 1)],
                ["customize, no vias (native kernel)",
                 fmt(timings["customize_novia_s"], 3)],
                ["customize, with vias",
                 fmt(timings["customize_vias_s"], 3)],
                ["customize, no vias (NumPy fallback)",
                 fmt(timings["customize_novia_numpy_s"], 3)],
                ["witness re-contraction", fmt(contraction_s, 1)],
            ],
        )
        print(
            f"customize beats re-contraction "
            f"{record['speedup_vs_recontraction']}x "
            f"({record['speedup_vs_recontraction_with_vias']}x with vias); "
            f"bit-identical on {sample.size} sources: {bit_identical}"
        )
    return record


def bench_swap_under_load(quiet: bool = False) -> dict:
    """Hot swap mid-burst: zero lost requests, never mixed-metric."""
    scale = _swap_scale()
    graph = europe_like(scale, seed=9)
    topo = build_topology(graph)
    base_w = np.asarray(graph.arc_len, dtype=np.int64)
    rng = np.random.default_rng(23)
    new_w = rng.integers(1, 10_000, size=graph.m, dtype=np.int64)

    gen_engines = [
        PhastEngine(topo.instantiate(customize(topo, w)))
        for w in (base_w, new_w)
    ]
    probe_sources = sorted(
        int(v) for v in rng.choice(graph.n, size=16, replace=False))
    # Per generation: the full distance array of every probe source.
    refs = [
        {s: e.tree(s).dist for s in probe_sources} for e in gen_engines
    ]

    service = PhastService(
        topology=topo, metric=customize(topo, base_w),
        config=ServerConfig(
            port=0, batch_max=8, max_wait_ms=2.0, max_pending=256),
    )
    stop = threading.Event()
    swap_started = threading.Event()
    swap_done = threading.Event()
    failures: list[str] = []
    mixed: list[str] = []
    # (phase, latency_s, generation_matched) per answered request.
    lock = threading.Lock()
    samples: list[tuple[str, float, int]] = []

    def phase() -> str:
        if not swap_started.is_set():
            return "before"
        return "during" if not swap_done.is_set() else "after"

    def load(tid: int) -> None:
        lrng = np.random.default_rng(100 + tid)
        try:
            with ServerClient(handle.host, handle.port) as client:
                while not stop.is_set():
                    s = probe_sources[int(lrng.integers(len(probe_sources)))]
                    ph = phase()
                    t0 = time.perf_counter()
                    got = client.tree(s)
                    dt = time.perf_counter() - t0
                    if np.array_equal(got, refs[0][s]):
                        gen = 0
                    elif np.array_equal(got, refs[1][s]):
                        gen = 1
                    else:
                        mixed.append(f"source {s}: answer matches no "
                                     "generation")
                        return
                    with lock:
                        samples.append((ph, dt, gen))
        except Exception as exc:  # any lost request fails the bench
            failures.append(f"loader {tid}: {exc}")

    with serve_in_thread(service) as handle:
        threads = [threading.Thread(target=load, args=(t,), daemon=True)
                   for t in range(3)]
        for t in threads:
            t.start()
        time.sleep(1.0)
        swap_started.set()
        with ServerClient(handle.host, handle.port) as admin:
            t0 = time.perf_counter()
            report = admin.swap_metric(weights=new_w, timeout=300)
            swap_s = time.perf_counter() - t0
        swap_done.set()
        time.sleep(1.0)
        stop.set()
        for t in threads:
            t.join(30)
        with ServerClient(handle.host, handle.port) as admin:
            final_gen = admin.info()["metric_generation"]

    phases = {}
    for name in ("before", "during", "after"):
        hist = LatencyHistogram()
        gens = set()
        for ph, dt, gen in samples:
            if ph == name:
                hist.observe(dt)
                gens.add(gen)
        summary = hist.summary() if hist.count else {}
        phases[name] = {
            "requests": hist.count,
            "p50_ms": summary.get("p50_ms"),
            "p99_ms": summary.get("p99_ms"),
            "generations_observed": sorted(gens),
        }
    # "before" must never see the new metric; "after" never the old one
    # (the swap is complete before swap_done is set, so any request
    # *started* afterwards sees generation 1).
    atomic = (1 not in phases["before"]["generations_observed"]
              and 0 not in phases["after"]["generations_observed"]
              and not mixed)
    record = {
        "instance": f"europe-{scale}",
        "n": graph.n,
        "loader_threads": 3,
        "requests_total": len(samples),
        "lost_requests": len(failures),
        "mixed_metric_answers": len(mixed),
        "atomic": bool(atomic),
        "swap_wall_s": round(swap_s, 4),
        "server_swap_s": report.get("swap_seconds"),
        "server_customize_s": report.get("customize_seconds"),
        "metric_generation_after": final_gen,
        "phases": phases,
        "failures": failures[:5],
    }
    if not quiet:
        print_table(
            f"hot swap under load (n={graph.n}, 3 closed-loop clients)",
            ["phase", "requests", "p50 ms", "p99 ms", "generations"],
            [
                [name, phases[name]["requests"],
                 fmt(phases[name]["p50_ms"] or 0, 2),
                 fmt(phases[name]["p99_ms"] or 0, 2),
                 str(phases[name]["generations_observed"])]
                for name in ("before", "during", "after")
            ],
        )
        print(
            f"swap wall time {swap_s * 1e3:.1f} ms; "
            f"{len(samples)} requests, {len(failures)} lost, "
            f"{len(mixed)} mixed-metric; atomic: {atomic}"
        )
    return record


def run(quiet: bool = False) -> dict:
    record = {
        "bench": "customize",
        "customization": bench_customize(quiet=quiet),
        "swap_under_load": bench_swap_under_load(quiet=quiet),
    }
    with open(OUTPUT, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    if not quiet:
        print(f"wrote {OUTPUT}")
    return record


if __name__ == "__main__":
    run()
