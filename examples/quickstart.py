"""Quickstart: build a road network, preprocess it, query everything.

Run::

    python examples/quickstart.py

Walks the core PHAST workflow end to end on a small synthetic road
network: generate, preprocess (contraction hierarchies), compute a full
shortest path tree in one linear sweep, cross-check against Dijkstra,
answer point-to-point queries, and reconstruct an actual route.
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    PhastEngine,
    ch_query,
    contract_graph,
    dijkstra,
    europe_like,
    parents_in_original_graph,
)
from repro.graph import INF, dfs_order


def main() -> None:
    # 1. A synthetic road network with a highway hierarchy (the paper's
    #    Europe instance has 18M vertices; this one is laptop-sized).
    graph = europe_like(scale=48, seed=0)
    graph = graph.permute(dfs_order(graph))  # cache-friendly layout
    print(f"graph: {graph.n} vertices, {graph.m} arcs")

    # 2. One-time preprocessing: contraction hierarchies.
    t0 = time.perf_counter()
    ch = contract_graph(graph)
    print(
        f"CH preprocessing: {time.perf_counter() - t0:.1f}s, "
        f"{ch.num_shortcuts} shortcuts, {ch.num_levels} levels"
    )

    # 3. The PHAST engine answers every subsequent source in one sweep.
    engine = PhastEngine(ch)
    source = 0
    engine.tree(source)  # warm up buffers so the timing is steady-state
    t0 = time.perf_counter()
    tree = engine.tree(source)
    phast_ms = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    reference = dijkstra(graph, source, with_parents=False)
    dijkstra_ms = (time.perf_counter() - t0) * 1e3

    assert np.array_equal(tree.dist, reference.dist)
    print(
        f"one shortest path tree: PHAST {phast_ms:.2f} ms vs "
        f"Dijkstra {dijkstra_ms:.2f} ms "
        f"(identical labels, {phast_ms and dijkstra_ms / phast_ms:.1f}x)"
    )

    reached = tree.dist < INF
    print(
        f"reached {int(reached.sum())} vertices; farthest is "
        f"{int(tree.dist[reached].max())} away"
    )

    # 4. Point-to-point queries via the same hierarchy.
    target = graph.n - 1
    q = ch_query(ch, source, target, unpack=True)
    print(
        f"p2p query {source} -> {target}: distance {q.distance}, "
        f"settled {q.settled_forward + q.settled_backward} vertices, "
        f"route has {len(q.path)} vertices"
    )

    # 5. A full tree with parent pointers in the original graph.
    parent = parents_in_original_graph(graph, tree.dist, source)
    v = target
    hops = 0
    while v != source:
        v = int(parent[v])
        hops += 1
    print(f"tree path to {target}: {hops} arcs, length {int(tree.dist[target])}")


if __name__ == "__main__":
    main()
