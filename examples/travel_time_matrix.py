"""Travel-time matrices for logistics with RPHAST.

Run::

    python examples/travel_time_matrix.py

A dispatch service repeatedly needs the travel-time matrix between a
fleet's current positions and a fixed set of depots.  Computing a full
shortest path tree per vehicle (PHAST) wastes work on the 99% of the
map nobody drives to; restricting the sweep to the part of the downward
graph that can reach the depots (RPHAST, the batched extension the
paper's one-to-all framing set up) makes each query proportional to
that small cone.
"""

from __future__ import annotations

import time

import numpy as np

from repro import RPhastEngine, contract_graph, dijkstra, europe_like
from repro.core import PhastEngine
from repro.graph import dfs_order


def main() -> None:
    graph = europe_like(scale=48, seed=2)
    graph = graph.permute(dfs_order(graph))
    print(f"map: {graph.n} vertices, {graph.m} arcs")
    ch = contract_graph(graph)

    rng = np.random.default_rng(11)
    depots = rng.integers(0, graph.n, 12)
    vehicles = [int(v) for v in rng.integers(0, graph.n, 40)]

    # Target-dependent selection, reused for every vehicle and every
    # re-dispatch tick until the depot set changes.
    t0 = time.perf_counter()
    engine = RPhastEngine(ch, depots)
    print(
        f"selection: {engine.size} of {graph.n} vertices "
        f"({engine.size / graph.n:.0%}), {engine.num_arcs} arcs, "
        f"{(time.perf_counter() - t0) * 1e3:.1f} ms"
    )

    t0 = time.perf_counter()
    matrix = engine.many_to_many(vehicles)
    rphast_ms = (time.perf_counter() - t0) * 1e3
    print(
        f"matrix {matrix.shape}: {rphast_ms:.1f} ms "
        f"({rphast_ms / len(vehicles):.2f} ms per vehicle)"
    )

    # Reference approaches.
    full = PhastEngine(ch)
    full.tree(vehicles[0])  # warm buffers
    t0 = time.perf_counter()
    for v in vehicles:
        full.tree(v)
    phast_ms = (time.perf_counter() - t0) * 1e3
    t0 = time.perf_counter()
    ref_rows = [dijkstra(graph, v, with_parents=False).dist for v in vehicles]
    dijkstra_ms = (time.perf_counter() - t0) * 1e3

    print(
        f"full PHAST sweeps: {phast_ms:.1f} ms; "
        f"Dijkstra: {dijkstra_ms:.1f} ms "
        f"(RPHAST {phast_ms / rphast_ms:.1f}x / {dijkstra_ms / rphast_ms:.1f}x faster)"
    )

    # Exactness check against Dijkstra.
    for i in range(len(vehicles)):
        assert np.array_equal(matrix[i], ref_rows[i][engine.targets])
    print("matrix verified exact")

    # A dispatch decision: nearest depot per vehicle.
    nearest = engine.targets[np.argmin(matrix, axis=1)]
    sample = ", ".join(
        f"vehicle@{v}->depot@{d}" for v, d in zip(vehicles[:4], nearest[:4])
    )
    print(f"nearest-depot assignment (sample): {sample}")


if __name__ == "__main__":
    main()
