"""Project PHAST performance onto real hardware with the model layer.

Run::

    python examples/hardware_projection.py

Given a target deployment (here: the paper's machines plus a custom
box), the simulator layer predicts per-tree times and all-pairs costs
at continental scale — the planning exercise Section VIII's tables
support, available as an API: describe the machine, get the landscape.
"""

from __future__ import annotations

from repro.simulator import (
    GTX_580,
    CostModel,
    GpuCostModel,
    MachineSpec,
    NumaTopology,
    WorkloadCounts,
    apsp_report,
    machine,
)

EUROPE = WorkloadCounts(n=18_000_000, arcs=33_800_000, levels=140)
EUROPE_DIJ = WorkloadCounts(n=18_000_000, arcs=42_000_000)


def main() -> None:
    # A machine that is not in the paper: a hypothetical 2-socket,
    # 32-core DDR4 server.
    custom = MachineSpec(
        name="custom-2x16",
        brand="ACME",
        cpu="Hypothetical 16-core",
        clock_ghz=3.0,
        sockets=2,
        cores=32,
        mem_type="DDR4",
        mem_gb=256,
        mem_clock_mhz=2666,
        bandwidth_gbs=68.0,
        numa_nodes=2,
        watts_full_load=450.0,
    )

    print(f"{'machine':>12} {'Dijkstra':>10} {'PHAST 1c':>9} "
          f"{'PHAST all cores k=16':>21} {'APSP':>12}")
    for spec in [machine("M1-4"), machine("M4-12"), machine("M2-6"), custom]:
        cm = CostModel(spec)
        dij = cm.dijkstra_single(EUROPE_DIJ)
        single = cm.phast_single(EUROPE)
        best = cm.phast_per_tree_parallel(
            EUROPE, spec.cores, trees_per_sweep=16, pinned=True
        )
        apsp = apsp_report(spec.name, best, spec.watts_full_load, EUROPE.n)
        print(
            f"{spec.name:>12} {dij:>8.0f}ms {single:>7.0f}ms "
            f"{best:>19.2f}ms {apsp.total_dhm:>12}"
        )

    # NUMA what-if: how much does pinning buy on the custom box?
    topo = NumaTopology.from_machine(custom)
    cm = CostModel(custom)
    bytes_tree = cm._phast_bytes_per_tree(EUROPE, 1)
    cpu = cm._cpu_ms(cm._phast_cycles_per_tree(EUROPE, 1, sse=False))
    pin = topo.per_tree_ms(bytes_tree, cpu, custom.cores, pinned=True)
    free = topo.per_tree_ms(bytes_tree, cpu, custom.cores, pinned=False)
    print(
        f"\n{custom.name}: pinned {pin:.1f} ms/tree vs unpinned "
        f"{free:.1f} ms/tree -> pinning buys {free / pin:.1f}x "
        "(replicate the graph per NUMA node!)"
    )

    # And the GPU option.
    import numpy as np

    levels = 140
    lv = np.full(levels, 9e6 / (levels - 1))
    lv[0] = 9e6
    la = np.full(levels, 33.8e6 / levels)
    gpu = GpuCostModel(GTX_580).sweep_cost(lv, la, 16, n=EUROPE.n, m=33_800_000)
    rep = apsp_report("GTX 580", gpu.per_tree_ms, 375.0, EUROPE.n)
    print(
        f"GTX 580: {gpu.per_tree_ms:.2f} ms/tree, APSP in {rep.total_dhm} "
        f"(d:hh:mm) at {rep.total_megajoules:.0f} MJ"
    )


if __name__ == "__main__":
    main()
