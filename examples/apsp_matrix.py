"""All-pairs shortest paths with multi-tree sweeps and worker processes.

Run::

    python examples/apsp_matrix.py

The headline capability of the paper: all-pairs shortest paths on road
networks.  This example computes a full distance matrix with k-tree
sweeps (Section IV-B) distributed over worker processes (Section V),
verifies a sample of rows against Dijkstra, and reports the throughput
alongside the GPU model's prediction of what the same sweep schedule
would cost on the paper's GTX 580 (Section VI).
"""

from __future__ import annotations

import time

import numpy as np

from repro import contract_graph, dijkstra, europe_like, trees_per_core
from repro.core import GphastEngine
from repro.graph import INF, dfs_order


def main() -> None:
    graph = europe_like(scale=24, seed=9)
    graph = graph.permute(dfs_order(graph))
    n = graph.n
    print(f"graph: {n} vertices — distance matrix has {n * n:,} entries")
    ch = contract_graph(graph)

    # Full APSP: one tree per vertex, 16 sources per sweep.
    t0 = time.perf_counter()
    rows = trees_per_core(
        ch, list(range(n)), num_workers=2, sources_per_sweep=16
    )
    elapsed = time.perf_counter() - t0
    matrix = np.vstack(rows)
    print(
        f"APSP: {elapsed:.1f}s total, {elapsed / n * 1e3:.2f} ms/tree, "
        f"matrix {matrix.shape}"
    )

    # Spot-check a few rows against the baseline.
    rng = np.random.default_rng(0)
    for s in rng.integers(0, n, 5):
        assert np.array_equal(
            matrix[int(s)], dijkstra(graph, int(s), with_parents=False).dist
        )
    print("sampled rows match Dijkstra")

    finite = matrix < INF
    print(
        f"diameter (from the matrix): {int(matrix[finite].max())}; "
        f"mean distance {matrix[finite].mean():.0f}"
    )

    # What would the same workload cost on the paper's GPU?
    gpu = GphastEngine(ch)
    report = gpu.trees(list(range(16))).report
    print(
        f"GPU model ({report.gpu}): {report.per_tree_ms:.4f} ms/tree at "
        f"k=16 -> all {n} trees in {report.per_tree_ms * n / 1e3:.2f} "
        "modeled seconds"
    )


if __name__ == "__main__":
    main()
