"""Route-planning preprocessing pipeline (the paper's motivating use).

Run::

    python examples/route_planning_server.py

Simulates what a web-scale routing service does offline: partition the
map, use PHAST to compute arc flags (the preprocessing step the paper
cuts from 10.5 hours to 3 minutes), then serve point-to-point queries
three ways — plain Dijkstra, contraction hierarchies, and arc-flag
Dijkstra — comparing answer quality (always exact) and search effort.
"""

from __future__ import annotations

import time

import numpy as np

from repro import contract_graph, dijkstra, europe_like
from repro.apps import (
    arcflags_query,
    boundary_vertices,
    compute_arc_flags,
    partition_graph,
)
from repro.ch import ch_query
from repro.graph import dfs_order


def main() -> None:
    graph = europe_like(scale=40, seed=3)
    graph = graph.permute(dfs_order(graph))
    print(f"map: {graph.n} vertices, {graph.m} arcs")

    # -- offline phase -------------------------------------------------
    t0 = time.perf_counter()
    ch = contract_graph(graph)
    print(f"CH preprocessing: {time.perf_counter() - t0:.1f}s")

    cells = 16
    part = partition_graph(graph, cells)
    boundary = boundary_vertices(graph, part)
    print(
        f"partition: {cells} cells, sizes {part.sizes().min()}..."
        f"{part.sizes().max()}, {boundary.size} boundary vertices"
    )

    t0 = time.perf_counter()
    reverse_ch = contract_graph(graph.reverse())
    flags = compute_arc_flags(graph, part, method="phast", reverse_ch=reverse_ch)
    t_phast = time.perf_counter() - t0
    t0 = time.perf_counter()
    compute_arc_flags(graph, part, method="dijkstra")
    t_dij = time.perf_counter() - t0
    print(
        f"arc flags ({boundary.size} reverse trees): PHAST backend "
        f"{t_phast:.1f}s vs Dijkstra backend {t_dij:.1f}s "
        f"({t_dij / t_phast:.1f}x) — {flags.bits_set_fraction:.0%} of "
        "flags set"
    )

    # -- online phase ------------------------------------------------------
    rng = np.random.default_rng(7)
    queries = [
        (int(s), int(t)) for s, t in rng.integers(0, graph.n, size=(50, 2))
    ]

    stats = {"dijkstra": [0, 0.0], "ch": [0, 0.0], "arcflags": [0, 0.0]}
    for s, t in queries:
        t0 = time.perf_counter()
        ref = dijkstra(graph, s, target=t)
        stats["dijkstra"][0] += ref.scanned
        stats["dijkstra"][1] += time.perf_counter() - t0

        t0 = time.perf_counter()
        q = ch_query(ch, s, t)
        stats["ch"][0] += q.settled_forward + q.settled_backward
        stats["ch"][1] += time.perf_counter() - t0
        assert q.distance == ref.dist[t]

        t0 = time.perf_counter()
        d, scanned = arcflags_query(flags, s, t)
        stats["arcflags"][0] += scanned
        stats["arcflags"][1] += time.perf_counter() - t0
        assert d == ref.dist[t]

    print(f"\n{len(queries)} random queries, all answers exact:")
    for name, (scanned, seconds) in stats.items():
        print(
            f"  {name:>9}: {scanned / len(queries):8.1f} vertices settled, "
            f"{seconds / len(queries) * 1e3:7.3f} ms avg"
        )


if __name__ == "__main__":
    main()
