"""Network analysis: diameter, reach and betweenness with PHAST.

Run::

    python examples/network_analysis.py

The paper's Section VII applications on one map: exact diameter (the
longest shortest path), exact vertex reach (the pruning value behind
RE/REAL route planning), and betweenness centrality — each needs a
shortest path tree per vertex, which is exactly the workload PHAST
turns from months into hours at continental scale.  The example also
shows that the structural measures agree: high-reach and
high-betweenness vertices are the highway tier the generator planted.
"""

from __future__ import annotations

import time

import numpy as np

from repro import contract_graph, europe_like
from repro.apps import betweenness, diameter, exact_reaches
from repro.graph import dfs_order


def main() -> None:
    graph = europe_like(scale=28, seed=5)
    graph = graph.permute(dfs_order(graph))
    print(f"network: {graph.n} vertices, {graph.m} arcs")
    ch = contract_graph(graph)

    # Exact diameter: n shortest path trees, one max per tree.
    t0 = time.perf_counter()
    diam = diameter(graph, ch, method="phast")
    print(
        f"diameter: {diam.value} (vertex {diam.source} -> {diam.target}), "
        f"{diam.trees_computed} trees in {time.perf_counter() - t0:.1f}s"
    )

    # Exact reaches: high reach = structurally important road.
    t0 = time.perf_counter()
    reaches = exact_reaches(graph, ch, method="phast")
    print(
        f"reach: computed for all vertices in {time.perf_counter() - t0:.1f}s; "
        f"median {int(np.median(reaches))}, max {int(reaches.max())}"
    )

    # Betweenness (sampled pivots keep the demo quick; pass
    # sources=None for the exact values).
    pivots = np.arange(0, graph.n, 2)
    t0 = time.perf_counter()
    bc = betweenness(graph, ch, sources=pivots, method="phast")
    print(
        f"betweenness: {pivots.size} pivots in {time.perf_counter() - t0:.1f}s"
    )

    # The measures should agree on who matters: correlate the top decile.
    k = graph.n // 10
    top_reach = set(np.argsort(-reaches)[:k].tolist())
    top_bc = set(np.argsort(-bc)[:k].tolist())
    overlap = len(top_reach & top_bc) / k
    print(f"top-10% overlap between reach and betweenness: {overlap:.0%}")

    # And the CH ranks (computed independently by preprocessing) should
    # put those same vertices near the top of the hierarchy.
    important = np.array(sorted(top_reach & top_bc), dtype=np.int64)
    if important.size:
        mean_rank = ch.rank[important].mean() / graph.n
        print(
            f"mean CH rank percentile of consensus-important vertices: "
            f"{mean_rank:.0%} (hierarchy agrees)"
        )


if __name__ == "__main__":
    main()
